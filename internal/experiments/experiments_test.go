package experiments

import (
	"strings"
	"sync"
	"testing"

	"sensei/internal/stats"
)

// sharedLab builds expensive fixtures once across the whole test run.
var (
	labOnce sync.Once
	lab     *Lab
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment fixtures are slow")
	}
	labOnce.Do(func() { lab = NewLab(Quick) })
	return lab
}

func TestTable1(t *testing.T) {
	l := NewLab(Quick)
	res := l.Table1()
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	out := res.Render()
	for _, want := range []string{"Soccer1", "BigBuckBunny", "Sports", "Animation", "WaterlooSQOE-III"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFig1ShowsPositionDependence(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MOS) != 6 {
		t.Fatalf("%d positions", len(res.MOS))
	}
	// The headline phenomenon: a substantial gap between best and worst
	// stall position (paper reports >40% on Soccer1).
	if res.GapPct < 0.10 {
		t.Fatalf("gap %.3f too small; Figure 1 phenomenon absent", res.GapPct)
	}
	if !strings.Contains(res.Render(), "max-min gap") {
		t.Fatal("render missing summary")
	}
}

func TestFig3GapDistribution(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WholeGaps) != 48 {
		t.Fatalf("%d series, want 48", len(res.WholeGaps))
	}
	if len(res.WindowGaps) <= len(res.WholeGaps) {
		t.Fatal("window variant missing")
	}
	// A meaningful share of series shows large gaps (paper: 21/48 > 40%).
	if res.Above40Pct < 0.2 {
		t.Fatalf("only %.2f of series above 40%% gap", res.Above40Pct)
	}
}

func TestFig4IncidentShapesAgree(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// 4-second stalls must be worse than 1-second stalls on average.
	if stats.Mean(res.MOS[1]) >= stats.Mean(res.MOS[0]) {
		t.Fatal("4s stall not worse than 1s stall")
	}
	// Rankings across incidents should agree (the Fig 4/5 premise).
	if r := stats.Spearman(res.MOS[0], res.MOS[1]); r < 0.4 {
		t.Fatalf("1s vs 4s rank correlation %.2f too low", r)
	}
}

func TestFig5CrossIncidentCorrelation(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Videos) != 16 {
		t.Fatalf("%d videos", len(res.Videos))
	}
	if m := stats.Mean(res.Rebuf1Vs4); m < 0.5 {
		t.Fatalf("mean 1s-vs-4s SRCC %.2f; paper shows strong correlation", m)
	}
	if m := stats.Mean(res.RebufVsDrop); m < 0.35 {
		t.Fatalf("mean rebuffer-vs-drop SRCC %.2f too low", m)
	}
}

func TestFig6AwareWins(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScalePct) != 5 {
		t.Fatalf("%d scales", len(res.ScalePct))
	}
	var wins int
	for i := range res.ScalePct {
		if res.AwareQoE[i] >= res.UnawareQoE[i] {
			wins++
		}
	}
	if wins < 4 {
		t.Fatalf("aware oracle won only %d/5 scales", wins)
	}
	// QoE grows with bandwidth for both.
	if res.AwareQoE[len(res.AwareQoE)-1] <= res.AwareQoE[0] {
		t.Fatal("QoE did not grow with bandwidth")
	}
}

func TestFig2ModelComparison(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]Fig2Row{}
	for _, r := range res.Rows {
		byName[r.Model] = r
	}
	sensei, ksqi := byName["SENSEI"], byName["KSQI"]
	if sensei.MeanRelErr >= ksqi.MeanRelErr {
		t.Fatalf("SENSEI error %.3f not below KSQI %.3f", sensei.MeanRelErr, ksqi.MeanRelErr)
	}
	// Quick mode resolves only a few dozen ABR pairs, so the discordance
	// estimate carries several points of sampling noise; require SENSEI to
	// be within that band of KSQI rather than strictly below.
	if sensei.DiscordantPct > ksqi.DiscordantPct+0.05 {
		t.Fatalf("SENSEI discordant %.3f above KSQI %.3f", sensei.DiscordantPct, ksqi.DiscordantPct)
	}
}

func TestFig15SenseiMostAccurate(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig15Row{}
	for _, r := range res.Rows {
		byName[r.Model] = r
		if len(r.Scatter) == 0 {
			t.Fatalf("%s missing scatter data", r.Model)
		}
	}
	s := byName["SENSEI"]
	for _, base := range []string{"KSQI", "LSTM-QoE", "P.1203"} {
		if s.PLCC <= byName[base].PLCC-0.02 {
			t.Fatalf("SENSEI PLCC %.2f not above %s %.2f", s.PLCC, base, byName[base].PLCC)
		}
	}
	if s.PLCC < 0.7 {
		t.Fatalf("SENSEI PLCC %.2f too low", s.PLCC)
	}
}

func TestFig16MoreBudgetMoreAccuracy(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 4 {
		t.Fatalf("%d panels", len(res.Panels))
	}
	// Cost must grow along the raters sweep.
	raters := res.Panels["M raters per video"]
	if len(raters) != 4 {
		t.Fatalf("%d rater points", len(raters))
	}
	if raters[len(raters)-1].CostPerMin <= raters[0].CostPerMin {
		t.Fatal("more raters should cost more")
	}
	// And the top-budget accuracy should be at least as good as the lowest.
	if raters[len(raters)-1].PLCC < raters[0].PLCC-0.05 {
		t.Fatalf("accuracy fell with budget: %.2f -> %.2f", raters[0].PLCC, raters[len(raters)-1].PLCC)
	}
}

func TestSanityMTurkVsLab(t *testing.T) {
	l := quickLab(t)
	res, err := l.Sanity()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clips) != 3 {
		t.Fatalf("%d clips", len(res.Clips))
	}
	if res.MaxRelDiffPct > 0.10 {
		t.Fatalf("MTurk and in-lab MOS disagree by %.1f%%; paper reports <3%%", 100*res.MaxRelDiffPct)
	}
}

func TestFig12aSenseiLeads(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig12a()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SenseiGains) == 0 {
		t.Fatal("no gain data")
	}
	sMed := stats.Percentile(res.SenseiGains, 0.5)
	pMed := stats.Percentile(res.PensieveGains, 0.5)
	fMed := stats.Percentile(res.FuguGains, 0.5)
	if sMed <= pMed && sMed <= fMed {
		t.Fatalf("SENSEI median gain %.3f not above Pensieve %.3f / Fugu %.3f", sMed, pMed, fMed)
	}
}

func TestFig12bSenseiNeedsLessBandwidth(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig12b()
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthSavingPct <= 0 {
		t.Fatalf("SENSEI bandwidth saving %.3f not positive", res.BandwidthSavingPct)
	}
	// QoE curves should be non-decreasing-ish in bandwidth at the ends.
	last := len(res.Sensei) - 1
	if res.Sensei[last] <= res.Sensei[0] {
		t.Fatal("SENSEI QoE did not grow with bandwidth")
	}
}

func TestFig12cPruningCutsCost(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig12c()
	if err != nil {
		t.Fatal(err)
	}
	if res.PruningSavingPct < 0.80 {
		t.Fatalf("pruning saved only %.2f; paper reports 96.7%%", res.PruningSavingPct)
	}
	// Pruned SENSEI should beat unprofiled Pensieve.
	if res.QoE[1] <= res.QoE[0] {
		t.Fatalf("pruned SENSEI QoE %.3f not above Pensieve %.3f", res.QoE[1], res.QoE[0])
	}
	// And cost far below full enumeration.
	if res.CostPerMin[1] >= res.CostPerMin[2] {
		t.Fatal("pruned cost not below full cost")
	}
}

func TestFig13PerVideoBreakdown(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Videos) == 0 {
		t.Fatal("no videos")
	}
	// SENSEI should beat its base algorithm on average across videos.
	if stats.Mean(res.SenseiGain) <= stats.Mean(res.PensieveGain) {
		t.Fatalf("SENSEI mean gain %.3f not above Pensieve %.3f",
			stats.Mean(res.SenseiGain), stats.Mean(res.PensieveGain))
	}
}

func TestFig14PerTraceBreakdown(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) == 0 {
		t.Fatal("no traces")
	}
	for i := 1; i < len(res.MeanMbps); i++ {
		if res.MeanMbps[i] < res.MeanMbps[i-1] {
			t.Fatal("traces not ordered by throughput")
		}
	}
}

func TestFig17SenseiRobustToVariance(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	// At every noise level, SENSEI-Fugu should stay above Fugu.
	var wins int
	for i := range res.StdDevKbps {
		if res.SenseiFugu[i] >= res.Fugu[i] {
			wins++
		}
	}
	if wins < len(res.StdDevKbps)-1 {
		t.Fatalf("SENSEI-Fugu beat Fugu at only %d/%d noise levels", wins, len(res.StdDevKbps))
	}
}

func TestFig18GainSourcesStack(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	// (a) SENSEI variants beat their bases for both families.
	if res.FuguSensei <= res.FuguBase {
		t.Fatalf("SENSEI-Fugu gain %.3f not above Fugu %.3f", res.FuguSensei, res.FuguBase)
	}
	// (b) the weighted objective already improves on the base.
	if res.BreakBitrateOnly <= res.BreakBase {
		t.Fatalf("bitrate-only SENSEI %.3f not above base %.3f", res.BreakBitrateOnly, res.BreakBase)
	}
}

func TestFig20CVModelsPoorlyCorrelated(t *testing.T) {
	l := quickLab(t)
	res, err := l.Fig20()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("%d series", len(res.Series))
	}
	for name, srcc := range res.MeanSRCC {
		if srcc > 0.75 {
			t.Fatalf("%s SRCC %.2f with user study; Appendix-D premise broken", name, srcc)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	l := quickLab(t)
	r1, err := l.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r1.Render(), "Figure 1") {
		t.Fatal("Fig1 render broken")
	}
	tbl := &Table{Title: "x", Headers: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	if !strings.Contains(tbl.Render(), "==") {
		t.Fatal("table render broken")
	}
}

func TestAppendixBSurveyMechanics(t *testing.T) {
	l := quickLab(t)
	res, err := l.AppendixB()
	if err != nil {
		t.Fatal(err)
	}
	if res.OrderBias > 0.12 || res.OrderBias < -0.12 {
		t.Fatalf("order bias %.3f too strong", res.OrderBias)
	}
	if res.NormalRejectRate <= res.MasterRejectRate {
		t.Fatalf("normal rejection %.3f not above master %.3f", res.NormalRejectRate, res.MasterRejectRate)
	}
	if res.CrowdExtraRatersPct < 0 {
		t.Fatalf("negative extra raters %v", res.CrowdExtraRatersPct)
	}
}
