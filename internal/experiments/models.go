package experiments

import (
	"fmt"

	"sensei/internal/crowd"
	"sensei/internal/mos"
	"sensei/internal/par"
	"sensei/internal/qoe"
	"sensei/internal/stats"
)

// Fig2Row is one model's accuracy on the §2.2 dataset.
type Fig2Row struct {
	Model string
	// MeanRelErr is the mean relative prediction error (x-axis of Fig 2).
	MeanRelErr float64
	// DiscordantPct is the fraction of mis-ranked ABR pairs (y-axis).
	DiscordantPct float64
}

// Fig2Result compares the QoE models on error and ABR-ranking accuracy.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 reproduces Figure 2: each model's relative prediction error, and how
// often it flips the QoE ranking of two ABR algorithms on the same
// (video, trace) pair. As in §2.2, models are trained on the ABR rendering
// dataset itself; we use 3-fold cross-validation over whole (video, trace)
// triples so every triple is scored out of fold and both metrics aggregate
// over the entire dataset.
func (l *Lab) Fig2() (*Fig2Result, error) {
	fig2Data, _, err := l.ModelData()
	if err != nil {
		return nil, err
	}
	weights, _, err := l.Weights()
	if err != nil {
		return nil, err
	}
	nTriples := len(fig2Data) / 3
	const folds = 3
	modelNames := []string{"SENSEI", "KSQI", "P.1203", "LSTM-QoE"}
	// predictions[model][sample index] = out-of-fold prediction.
	predictions := map[string][]float64{}
	for _, name := range modelNames {
		predictions[name] = make([]float64, len(fig2Data))
	}

	// Folds train disjoint model instances and write disjoint prediction
	// slots, so they run concurrently.
	if err := par.ForEach(folds, func(fold int) error {
		var train, test []qoe.Sample
		var testIdx []int
		for t := 0; t < nTriples; t++ {
			triple := fig2Data[t*3 : t*3+3]
			if t%folds == fold {
				test = append(test, triple...)
				testIdx = append(testIdx, t*3, t*3+1, t*3+2)
			} else {
				train = append(train, triple...)
			}
		}
		ksqi := &qoe.KSQI{}
		if err := ksqi.Fit(train); err != nil {
			return err
		}
		p1203 := &qoe.P1203{Seed: 0x22 + uint64(fold), Trees: l.forestSize()}
		if err := p1203.Fit(train); err != nil {
			return err
		}
		lstm := &qoe.LSTMQoE{Seed: 0x24 + uint64(fold), Hidden: 8, Epochs: l.lstmEpochs()}
		if err := lstm.Fit(train); err != nil {
			return err
		}
		sensei := qoe.NewSenseiModel(ksqi, weights)
		if err := sensei.Fit(train); err != nil {
			return err
		}
		for _, m := range []qoe.Model{sensei, ksqi, p1203, lstm} {
			for k, s := range test {
				predictions[m.Name()][testIdx[k]] = m.Predict(s.Rendering)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	res := &Fig2Result{}
	for _, name := range modelNames {
		pred := predictions[name]
		var relErrs []float64
		var discordant, pairs int
		for t := 0; t < nTriples; t++ {
			var p, truth [3]float64
			for k := 0; k < 3; k++ {
				idx := t*3 + k
				p[k] = pred[idx]
				truth[k] = fig2Data[idx].TrueQoE
				relErrs = append(relErrs, stats.RelativeError(p[k], truth[k]))
			}
			for a := 0; a < 3; a++ {
				for b := a + 1; b < 3; b++ {
					dt := truth[a] - truth[b]
					// Pairs whose true QoE difference is inside MOS noise
					// (~0.03 at 30 raters) are unresolvable by any model;
					// counting them would measure rater noise, not model
					// ability.
					if dt < 0.03 && dt > -0.03 {
						continue
					}
					pairs++
					dp := p[a] - p[b]
					if dp == 0 || (dt > 0) != (dp > 0) {
						discordant++
					}
				}
			}
		}
		row := Fig2Row{Model: name, MeanRelErr: stats.Mean(relErrs)}
		if pairs > 0 {
			row.DiscordantPct = float64(discordant) / float64(pairs)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the comparison.
func (r *Fig2Result) Render() string {
	t := &Table{Title: "Figure 2: QoE model error vs discordant ABR rankings",
		Headers: []string{"Model", "Mean rel. error", "Discordant pairs"}}
	for _, row := range r.Rows {
		t.AddRow(row.Model, pct(row.MeanRelErr), pct(row.DiscordantPct))
	}
	return t.Render()
}

// Fig15Row is one model's held-out accuracy.
type Fig15Row struct {
	Model      string
	PLCC, SRCC float64
	// Scatter holds (predicted, true) pairs for the figure.
	Scatter [][2]float64
}

// Fig15Result is the §7.3 model-accuracy study.
type Fig15Result struct {
	Rows []Fig15Row
}

// Fig15 reproduces Figure 15: PLCC/SRCC of each model on the held-out split
// of the randomized-rendering dataset.
func (l *Lab) Fig15() (*Fig15Result, error) {
	_, fig15, err := l.ModelData()
	if err != nil {
		return nil, err
	}
	ksqi, p1203, lstm, sensei, err := l.Models()
	if err != nil {
		return nil, err
	}
	test := fig15[len(fig15)*5/8:]
	res := &Fig15Result{}
	for _, m := range []qoe.Model{sensei, ksqi, lstm, p1203} {
		ev := qoe.Evaluate(m, test)
		row := Fig15Row{Model: m.Name(), PLCC: ev.PLCC, SRCC: ev.SRCC}
		for _, s := range test {
			row.Scatter = append(row.Scatter, [2]float64{m.Predict(s.Rendering), s.TrueQoE})
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the accuracy table.
func (r *Fig15Result) Render() string {
	t := &Table{Title: "Figure 15: QoE prediction accuracy (held-out)",
		Headers: []string{"Model", "PLCC", "SRCC"}}
	for _, row := range r.Rows {
		t.AddRow(row.Model, f2(row.PLCC), f2(row.SRCC))
	}
	return t.Render()
}

// Fig16Point is one (cost, accuracy) operating point of a scheduler knob.
type Fig16Point struct {
	Setting      string
	CostPerMin   float64
	PLCC         float64
	RatedVideos  int
	Participants int
}

// Fig16Result sweeps the four scheduler parameters.
type Fig16Result struct {
	// Panels maps parameter name to its sweep.
	Panels map[string][]Fig16Point
}

// fig16EvalSet builds test renderings of one video for accuracy probes.
func (l *Lab) fig16EvalSet(v int, n int) ([]qoe.Sample, error) {
	pop, _, err := l.Populations()
	if err != nil {
		return nil, err
	}
	vid := l.Videos()[v]
	rng := stats.NewRNG(0x16e)
	renderings := make([]*qoe.Rendering, n)
	for i := 0; i < n; i++ {
		r := qoe.NewRendering(vid)
		for c := range r.Rungs {
			r.Rungs[c] = rng.Intn(len(vid.Ladder))
		}
		if rng.Bool(0.6) {
			r.StallSec[rng.Intn(vid.NumChunks())] += float64(1 + rng.Intn(2))
		}
		renderings[i] = r
	}
	out := make([]qoe.Sample, n)
	const base = 500000
	if err := par.ForEach(n, func(i int) error {
		m, err := l.trueMOS(pop, renderings[i], base+i*l.raters())
		if err != nil {
			return err
		}
		out[i] = qoe.Sample{Rendering: renderings[i], TrueQoE: m}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// fig16Accuracy profiles the video with the given params and returns the
// (cost, PLCC) operating point.
func (l *Lab) fig16Accuracy(videoIdx int, params crowd.SchedulerParams, eval []qoe.Sample) (Fig16Point, error) {
	pop, _, err := l.Populations()
	if err != nil {
		return Fig16Point{}, err
	}
	vid := l.Videos()[videoIdx]
	profiler := crowd.NewProfiler(pop)
	profiler.Params = params
	p, err := profiler.Profile(vid)
	if err != nil {
		return Fig16Point{}, err
	}
	model := qoe.NewSenseiModel(&qoe.KSQI{}, map[string][]float64{vid.Name: p.Weights})
	var pred, truth []float64
	for _, s := range eval {
		pred = append(pred, model.Predict(s.Rendering))
		truth = append(truth, s.TrueQoE)
	}
	return Fig16Point{
		CostPerMin:   p.CostPerMinuteUSD,
		PLCC:         stats.Pearson(pred, truth),
		RatedVideos:  p.RatedRenderings,
		Participants: p.Participants,
	}, nil
}

// Fig16 reproduces Figure 16: QoE-model accuracy vs crowdsourcing cost as
// each scheduler knob (B bitrate levels, F rebuffer levels, M raters,
// α threshold) varies around the default operating point.
func (l *Lab) Fig16() (*Fig16Result, error) {
	const videoIdx = 1 // Soccer1
	evalN := 60
	if l.Mode == Quick {
		evalN = 30
	}
	eval, err := l.fig16EvalSet(videoIdx, evalN)
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{Panels: map[string][]Fig16Point{}}

	// The sweep grid is embarrassingly parallel: every point profiles the
	// video with its own campaign against the shared read-only population.
	type sweepPoint struct {
		panel, setting string
		params         crowd.SchedulerParams
	}
	var grid []sweepPoint
	for _, b := range []int{1, 2, 3, 4} {
		p := crowd.DefaultSchedulerParams()
		p.BitrateLevels = b
		grid = append(grid, sweepPoint{"B bitrate levels", fmt.Sprintf("B=%d", b), p})
	}
	for _, f := range []int{1, 2, 3, 5} {
		p := crowd.DefaultSchedulerParams()
		p.RebufferLevels = f
		grid = append(grid, sweepPoint{"F rebuffer levels", fmt.Sprintf("F=%d", f), p})
	}
	for _, m := range []int{5, 10, 20, 30} {
		p := crowd.DefaultSchedulerParams()
		p.M1 = m
		p.M2 = m / 2
		grid = append(grid, sweepPoint{"M raters per video", fmt.Sprintf("M1=%d", m), p})
	}
	for _, a := range []float64{0.02, 0.06, 0.12, 0.25} {
		p := crowd.DefaultSchedulerParams()
		p.Alpha = a
		grid = append(grid, sweepPoint{"alpha threshold", fmt.Sprintf("a=%.0f%%", a*100), p})
	}
	points := make([]Fig16Point, len(grid))
	if err := par.ForEach(len(grid), func(i int) error {
		pt, err := l.fig16Accuracy(videoIdx, grid[i].params, eval)
		if err != nil {
			return fmt.Errorf("experiments: fig16 %s=%s: %w", grid[i].panel, grid[i].setting, err)
		}
		pt.Setting = grid[i].setting
		points[i] = pt
		return nil
	}); err != nil {
		return nil, err
	}
	for i, sp := range grid {
		res.Panels[sp.panel] = append(res.Panels[sp.panel], points[i])
	}
	return res, nil
}

// Render formats the four panels.
func (r *Fig16Result) Render() string {
	out := ""
	for _, panel := range []string{"B bitrate levels", "F rebuffer levels", "M raters per video", "alpha threshold"} {
		t := &Table{Title: "Figure 16: " + panel, Headers: []string{"Setting", "$/min", "PLCC", "Rated", "Raters"}}
		for _, pt := range r.Panels[panel] {
			t.AddRow(pt.Setting, usd(pt.CostPerMin), f2(pt.PLCC), fmt.Sprint(pt.RatedVideos), fmt.Sprint(pt.Participants))
		}
		out += t.Render()
	}
	return out
}

// SanityResult is the §4.1 MTurk-vs-in-lab check.
type SanityResult struct {
	Clips []string
	// MTurkMOS and InLabMOS are normalized scores per clip.
	MTurkMOS, InLabMOS []float64
	// MaxRelDiffPct is the worst relative disagreement.
	MaxRelDiffPct float64
}

// Sanity reproduces the §4.1 sanity check: MOS collected from the
// crowdsourcing population closely matches an in-lab-style panel on the
// same clips (paper: <3% relative difference).
func (l *Lab) Sanity() (*SanityResult, error) {
	mturk, inlab, err := l.Populations()
	if err != nil {
		return nil, err
	}
	res := &SanityResult{}
	clips := []string{"BigBuckBunny", "Soccer2", "Space"}
	offset := 700000
	for i, name := range clips {
		clip := l.excerptByName(name)
		if clip == nil {
			return nil, fmt.Errorf("experiments: clip %s missing", name)
		}
		r := qoe.NewRendering(clip).WithStall(2, 1).WithRung(4, 1)
		mt, _, err := mos.CollectMOS(mturk, r, 40, offset)
		if err != nil {
			return nil, err
		}
		il, _, err := mos.CollectMOS(inlab, r, 40, i*40)
		if err != nil {
			return nil, err
		}
		res.Clips = append(res.Clips, name)
		res.MTurkMOS = append(res.MTurkMOS, mt)
		res.InLabMOS = append(res.InLabMOS, il)
		d := stats.RelativeError(mt, il)
		if d > res.MaxRelDiffPct {
			res.MaxRelDiffPct = d
		}
		offset += 40
	}
	return res, nil
}

// Render formats the comparison.
func (r *SanityResult) Render() string {
	t := &Table{Title: "Sanity (§4.1): MTurk vs in-lab MOS", Headers: []string{"Clip", "MTurk", "In-lab", "Rel diff"}}
	for i := range r.Clips {
		t.AddRow(r.Clips[i], f3(r.MTurkMOS[i]), f3(r.InLabMOS[i]), pct(stats.RelativeError(r.MTurkMOS[i], r.InLabMOS[i])))
	}
	t.AddRow("max", "", "", pct(r.MaxRelDiffPct))
	return t.Render()
}
