package experiments

import (
	"fmt"

	"sensei/internal/crowd"
	"sensei/internal/mos"
	"sensei/internal/qoe"
	"sensei/internal/stats"
)

// AppendixBResult reproduces the survey-mechanics findings of Appendices
// B and C: randomized viewing order leaves no position bias, master
// Turkers are rejected far less often than normal Turkers, and the
// crowd needs somewhat more raters than an in-lab panel to reach the same
// MOS variance.
type AppendixBResult struct {
	// OrderBias is the position-rating correlation across accepted
	// surveys (should be near zero under randomization).
	OrderBias float64
	// MasterRejectRate and NormalRejectRate are survey rejection rates by
	// Turker class (Appendix C: normal ≈ 4× master).
	MasterRejectRate, NormalRejectRate float64
	// CrowdExtraRatersPct is how many more crowd raters than in-lab raters
	// are needed to match MOS variance (paper: ~17%).
	CrowdExtraRatersPct float64
}

// AppendixB runs the survey-mechanics study.
func (l *Lab) AppendixB() (*AppendixBResult, error) {
	mturk, inlab, err := l.Populations()
	if err != nil {
		return nil, err
	}
	clip := l.excerptByName("Soccer1")
	if clip == nil {
		return nil, fmt.Errorf("experiments: Soccer1 missing")
	}
	var clips []*qoe.Rendering
	for i := 0; i < 4; i++ {
		clips = append(clips, qoe.NewRendering(clip).WithStall(i+1, 1))
	}

	res := &AppendixBResult{}

	// Order bias across many surveys.
	rng := stats.NewRNG(0xb0)
	var surveys []*crowd.SurveyResult
	nSurveys := 300
	if l.Mode == Quick {
		nSurveys = 120
	}
	for i := 0; i < nSurveys; i++ {
		s, err := crowd.RunSurvey(mturk.Rater(i%mturk.Size()), clips, rng.Fork())
		if err != nil {
			return nil, err
		}
		surveys = append(surveys, s)
	}
	res.OrderBias = crowd.OrderBias(surveys)

	// Rejection rates by Turker class need a mixed population.
	mixed, err := mos.NewPopulation(mos.PopulationConfig{Size: 3000, MasterFraction: 0.5, Seed: 0xb1})
	if err != nil {
		return nil, err
	}
	res.MasterRejectRate, res.NormalRejectRate, err = crowd.RejectionRates(mixed, clips, 2000, 0xb2)
	if err != nil {
		return nil, err
	}

	// Raters needed to match in-lab MOS variance: measure the sampling
	// stddev of MOS at fixed rater counts for both pools and find the
	// crowd count matching the in-lab stddev at 20 raters.
	target := clips[1]
	mosStd := func(pop *mos.Population, raters, trials int, seed int) (float64, error) {
		var ms []float64
		for tr := 0; tr < trials; tr++ {
			m, _, err := mos.CollectMOS(pop, target, raters, seed+tr*raters)
			if err != nil {
				return 0, err
			}
			ms = append(ms, m)
		}
		return stats.StdDev(ms), nil
	}
	inlabStd, err := mosStd(inlab, 20, 10, 0)
	if err != nil {
		return nil, err
	}
	crowdRaters := 20
	for ; crowdRaters <= 40; crowdRaters += 2 {
		s, err := mosStd(mturk, crowdRaters, 10, 40000)
		if err != nil {
			return nil, err
		}
		if s <= inlabStd {
			break
		}
	}
	res.CrowdExtraRatersPct = float64(crowdRaters-20) / 20
	return res, nil
}

// Render formats the findings.
func (r *AppendixBResult) Render() string {
	t := &Table{Title: "Appendix B/C: survey mechanics", Headers: []string{"Metric", "Value", "Paper"}}
	t.AddRow("viewing-order bias (PLCC)", f3(r.OrderBias), "~0 (randomized)")
	t.AddRow("master rejection rate", pct(r.MasterRejectRate), "low")
	t.AddRow("normal rejection rate", pct(r.NormalRejectRate), ">4x master")
	t.AddRow("extra crowd raters vs in-lab", pct(r.CrowdExtraRatersPct), "17%")
	return t.Render()
}
