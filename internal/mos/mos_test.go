package mos

import (
	"math"
	"testing"

	"sensei/internal/qoe"
	"sensei/internal/stats"
	"sensei/internal/video"
)

func soccer(t *testing.T) *video.Video {
	t.Helper()
	v, err := video.ByName("Soccer1")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func pop(t *testing.T, n int, seed uint64) *Population {
	t.Helper()
	p, err := NewPopulation(PopulationConfig{Size: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrueQoEBounds(t *testing.T) {
	v := soccer(t)
	pristine := qoe.NewRendering(v)
	if got := TrueQoE(pristine); got < 0.95 || got > 1 {
		t.Fatalf("pristine QoE %v, want near 1", got)
	}
	// Degrade everything.
	wrecked := pristine.Clone()
	for i := range wrecked.Rungs {
		wrecked.Rungs[i] = 0
		wrecked.StallSec[i] = 3
	}
	if got := TrueQoE(wrecked); got > 0.25 {
		t.Fatalf("wrecked QoE %v, want low", got)
	}
}

func TestTrueQoESensitivityAlignment(t *testing.T) {
	// A stall at the most sensitive chunk must hurt more than at the least
	// sensitive chunk — the Figure 1 phenomenon.
	v := soccer(t)
	w := v.TrueSensitivity()
	hi, lo := 0, 0
	for i := range w {
		if w[i] > w[hi] {
			hi = i
		}
		if w[i] < w[lo] {
			lo = i
		}
	}
	base := qoe.NewRendering(v)
	if TrueQoE(base.WithStall(hi, 1)) >= TrueQoE(base.WithStall(lo, 1)) {
		t.Fatal("stall at sensitive chunk should yield lower QoE")
	}
	// The unweighted view cannot tell them apart.
	d := TrueQoEUnweighted(base.WithStall(hi, 1)) - TrueQoEUnweighted(base.WithStall(lo, 1))
	if math.Abs(d) > 1e-9 {
		t.Fatalf("unweighted QoE should be position-blind, diff %v", d)
	}
}

func TestNewPopulationValidates(t *testing.T) {
	if _, err := NewPopulation(PopulationConfig{Size: 0}); err == nil {
		t.Fatal("zero population accepted")
	}
}

func TestPopulationDeterministic(t *testing.T) {
	v := soccer(t)
	r := qoe.NewRendering(v).WithStall(3, 1)
	a := pop(t, 50, 7)
	b := pop(t, 50, 7)
	for i := 0; i < 50; i++ {
		if a.Rater(i).Rate(r) != b.Rater(i).Rate(r) {
			t.Fatal("same seed, different ratings")
		}
	}
}

func TestMasterFraction(t *testing.T) {
	p, err := NewPopulation(PopulationConfig{Size: 100, MasterFraction: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var masters int
	for i := 0; i < p.Size(); i++ {
		if p.Rater(i).Master {
			masters++
		}
	}
	if masters != 30 {
		t.Fatalf("%d masters, want 30", masters)
	}
}

func TestRateWithinLikert(t *testing.T) {
	v := soccer(t)
	p := pop(t, 30, 11)
	for _, r := range []*qoe.Rendering{
		qoe.NewRendering(v),
		qoe.NewRendering(v).WithStall(2, 4).WithRung(5, 0),
	} {
		for i := 0; i < p.Size(); i++ {
			score := p.Rater(i).Rate(r)
			if score < LikertMin || score > LikertMax {
				t.Fatalf("rating %d outside scale", score)
			}
		}
	}
}

func TestMOSAggregation(t *testing.T) {
	m, err := MOS([]int{1, 5})
	if err != nil || math.Abs(m-0.5) > 1e-12 {
		t.Fatalf("MOS = %v, %v", m, err)
	}
	if _, err := MOS(nil); err == nil {
		t.Fatal("empty ratings accepted")
	}
	if _, err := MOS([]int{0}); err == nil {
		t.Fatal("out-of-scale rating accepted")
	}
	if _, err := MOS([]int{6}); err == nil {
		t.Fatal("out-of-scale rating accepted")
	}
}

func TestCollectMOSApproachesTruth(t *testing.T) {
	v := soccer(t)
	r := qoe.NewRendering(v).WithStall(4, 2).WithRung(7, 1)
	truth := TrueQoE(r)
	p := pop(t, 400, 13)
	m, _, err := CollectMOS(p, r, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-truth) > 0.06 {
		t.Fatalf("MOS %v far from truth %v", m, truth)
	}
}

func TestCollectMOSMoreRatersLessVariance(t *testing.T) {
	v := soccer(t)
	r := qoe.NewRendering(v).WithStall(3, 1)
	var few, many []float64
	for trial := 0; trial < 20; trial++ {
		p := pop(t, 200, uint64(100+trial))
		f, _, err := CollectMOS(p, r, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := CollectMOS(p, r, 60, 0)
		if err != nil {
			t.Fatal(err)
		}
		few = append(few, f)
		many = append(many, m)
	}
	if stats.StdDev(many) >= stats.StdDev(few) {
		t.Fatalf("60-rater stddev %v not below 5-rater %v",
			stats.StdDev(many), stats.StdDev(few))
	}
}

func TestCollectMOSValidates(t *testing.T) {
	v := soccer(t)
	p := pop(t, 10, 17)
	if _, _, err := CollectMOS(p, qoe.NewRendering(v), 0, 0); err == nil {
		t.Fatal("zero raters accepted")
	}
}

func TestMastersRejectedLessOften(t *testing.T) {
	// Appendix C: master Turker rejection rate is much lower than normal
	// Turkers'.
	v := soccer(t)
	r := qoe.NewRendering(v).WithStall(5, 1)
	p, err := NewPopulation(PopulationConfig{Size: 2000, MasterFraction: 0.5, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	var masterFail, normalFail, masterN, normalN int
	for i := 0; i < p.Size(); i++ {
		rt := p.Rater(i)
		fail := !rt.PassesIntegrityChecks() || rt.WouldInvertReference(r)
		if rt.Master {
			masterN++
			if fail {
				masterFail++
			}
		} else {
			normalN++
			if fail {
				normalFail++
			}
		}
	}
	mRate := float64(masterFail) / float64(masterN)
	nRate := float64(normalFail) / float64(normalN)
	if nRate <= mRate {
		t.Fatalf("normal rejection %v not above master %v", nRate, mRate)
	}
}

func TestRebufferPositionMatters(t *testing.T) {
	// End-to-end Figure 1 sanity: on a 25-second excerpt (like the paper's
	// Soccer1 clip), MOS across stall positions must vary far more than MOS
	// noise. Pick the clip with the widest sensitivity spread, as the
	// paper's Soccer1 clip spans gameplay, the goal and the celebration.
	full := soccer(t)
	w := full.TrueSensitivity()
	best, bestSpread := 0, -1.0
	for s := 0; s+6 <= len(w); s++ {
		lo, hi := w[s], w[s]
		for _, x := range w[s : s+6] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if hi-lo > bestSpread {
			bestSpread, best = hi-lo, s
		}
	}
	v, err := full.Excerpt(best, best+6)
	if err != nil {
		t.Fatal(err)
	}
	p := pop(t, 600, 29)
	base := qoe.NewRendering(v)
	var scores []float64
	for i := 0; i < v.NumChunks(); i++ {
		m, _, err := CollectMOS(p, base.WithStall(i, 1), 120, 0)
		if err != nil {
			t.Fatal(err)
		}
		scores = append(scores, m)
	}
	gap := stats.Max(scores) - stats.Min(scores)
	if gap < 0.05 {
		t.Fatalf("max-min MOS gap %v too small for Figure 1 phenomenon", gap)
	}
}
