package mos

import (
	"testing"

	"sensei/internal/qoe"
	"sensei/internal/video"
)

func chunkTestVideo(t testing.TB) *video.Video {
	t.Helper()
	full, err := video.ByName("Soccer1")
	if err != nil {
		t.Fatal(err)
	}
	v, err := full.Excerpt(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestChunkTrueQoEBounds(t *testing.T) {
	v := chunkTestVideo(t)
	pristine := qoe.NewRendering(v)
	for i := 0; i < v.NumChunks(); i++ {
		q := ChunkTrueQoE(pristine, i)
		if q < 0 || q > 1 {
			t.Fatalf("chunk %d: %v outside [0,1]", i, q)
		}
		// A pristine chunk has zero visual deficit only at the top rung of
		// an ideal codec; the proxy leaves a small residual, so demand
		// near-1 rather than exactly 1.
		if q < 0.8 {
			t.Fatalf("pristine chunk %d scored %v", i, q)
		}
	}
	// Degrading a chunk must not raise its score, and stalls must hurt.
	bad := pristine.WithRung(3, 0).WithStall(3, 4)
	if got, was := ChunkTrueQoE(bad, 3), ChunkTrueQoE(pristine, 3); got >= was {
		t.Fatalf("degraded chunk scored %v, pristine %v", got, was)
	}
	if q := ChunkTrueQoE(pristine.WithStall(0, 500), 0); q != 0 {
		t.Fatalf("catastrophic stall not clamped to 0: %v", q)
	}
}

// TestChunkTrueQoEMatchesWholeVideo pins the per-chunk restriction to the
// whole-video ground truth: averaging 1 − w*_i d_i over chunks is TrueQoE
// before its final clamp.
func TestChunkTrueQoEMatchesWholeVideo(t *testing.T) {
	v := chunkTestVideo(t)
	r := qoe.NewRendering(v).WithStall(5, 0.2)
	var sum float64
	for i := 0; i < v.NumChunks(); i++ {
		sum += ChunkTrueQoE(r, i)
	}
	mean := sum / float64(v.NumChunks())
	whole := TrueQoE(r)
	// The per-chunk clamp can only raise the mean relative to the
	// whole-video form; with moderate degradation neither clamp binds and
	// the two agree exactly.
	if d := mean - whole; d < -1e-12 || d > 1e-12 {
		t.Fatalf("per-chunk mean %v vs whole-video %v", mean, whole)
	}
}

func TestSessionRaterDeterministicAndDistinct(t *testing.T) {
	v := chunkTestVideo(t)
	r := qoe.NewRendering(v).WithRung(1, 0).WithStall(4, 2)
	pop, err := NewPopulation(PopulationConfig{Size: 64, Seed: 0xfeed})
	if err != nil {
		t.Fatal(err)
	}
	pop2, err := NewPopulation(PopulationConfig{Size: 64, Seed: 0xfeed})
	if err != nil {
		t.Fatal(err)
	}
	type obs struct {
		rating int
		ok     bool
	}
	rate := func(p *Population, session int) []obs {
		sr, err := p.SessionRater(session)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]obs, v.NumChunks())
		for i := range out {
			out[i].rating, out[i].ok = sr.RateChunk(r, i)
		}
		return out
	}
	// Same population seed + session index → identical ratings, regardless
	// of which Population instance produced them.
	a, b := rate(pop, 7), rate(pop2, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Ratings stay on the Likert scale.
	for i, o := range a {
		if o.ok && (o.rating < LikertMin || o.rating > LikertMax) {
			t.Fatalf("chunk %d rating %d off scale", i, o.rating)
		}
	}
	// Different sessions draw different personas/slots; across a spread of
	// sessions the streams must not all coincide.
	distinct := false
	for s := 0; s < 8 && !distinct; s++ {
		c := rate(pop, s)
		for i := range c {
			if c[i] != a[i] {
				distinct = true
				break
			}
		}
	}
	if !distinct {
		t.Fatal("eight sessions produced identical rating streams")
	}
	if _, err := pop.SessionRater(-1); err == nil {
		t.Fatal("negative session index accepted")
	}
}

// TestSessionRaterTracksQuality sanity-checks the signal the closed loop
// feeds on: across many raters, a heavily degraded chunk must average a
// clearly lower score than a pristine one.
func TestSessionRaterTracksQuality(t *testing.T) {
	v := chunkTestVideo(t)
	good := qoe.NewRendering(v)
	bad := good.WithRung(2, 0).WithStall(2, 4)
	pop, err := NewPopulation(PopulationConfig{Size: 256, Seed: 0xbead})
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(r *qoe.Rendering) float64 {
		var sum, n float64
		for s := 0; s < 256; s++ {
			sr, err := pop.SessionRater(s)
			if err != nil {
				t.Fatal(err)
			}
			if score, ok := sr.RateChunk(r, 2); ok {
				sum += float64(score)
				n++
			}
		}
		// The integrity filters legitimately reject a sizable minority
		// (near-pristine clips often round above the noisy reference), but
		// a majority must get through.
		if n < 128 {
			t.Fatalf("only %v of 256 raters produced a score", n)
		}
		return sum / n
	}
	g, b := meanOf(good), meanOf(bad)
	if g-b < 1 {
		t.Fatalf("degraded chunk barely moved the crowd: good %.2f, bad %.2f", g, b)
	}
}
