package mos

import (
	"fmt"

	"sensei/internal/qoe"
)

// This file is the client half of the closed feedback loop: per-chunk
// ground truth and the session-scoped rater the DASH client's Rater hook is
// backed by. The §4 studies rate whole renderings after the fact; a closed
// loop instead collects one lightweight in-player rating per rendered
// chunk, which is what makes the evidence localizable to a chunk window.

// ChunkTrueQoE returns the ground-truth QoE of one rendered chunk:
// 1 − w*_i d_i, the chunk's quality deficit weighted by the video's latent
// sensitivity at that chunk, clamped to [0,1]. It is the per-chunk
// restriction of TrueQoE — averaging it over all chunks of a rendering
// recovers (up to the final clamp) the whole-video ground truth — and, like
// TrueQoE, it is latent: production systems observe it only through noisy
// rater samples.
func ChunkTrueQoE(r *qoe.Rendering, i int) float64 {
	d := qoe.ChunkDeficit(qoe.DefaultQualityParams(), r, i)
	q := 1 - r.Video.TrueSensitivity()[i]*d
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// TryRateChunk simulates one in-player chunk rating: the rater scores the
// just-rendered chunk i on the Likert scale, subject to the same integrity
// filtering as a survey assignment (a distracted rater produces nothing).
// Like TryRate, the outcome is a pure function of (rater, slot, chunk
// experience) — order-independent, so concurrent sessions rating through
// the same population stay bit-reproducible.
func (r *Rater) TryRateChunk(rendering *qoe.Rendering, i, slot int) (rating int, ok bool) {
	return r.tryRate(ChunkTrueQoE(rendering, i), slot)
}

// sessionSlotStride spaces the slot ranges of per-session raters so that no
// two sessions (or chunks within a session) share an event slot; it is
// comfortably above any real chunk count.
const sessionSlotStride = 1 << 20

// SessionRater is one streaming session's feedback persona: a single rater
// drawn from the population, with a private slot range keyed by the session
// index, rating each rendered chunk as it plays. It implements the DASH
// client's Rater hook shape — RateChunk(rendering, chunk) — and is safe for
// the client's sequential use; distinct sessions get distinct raters (round
// robin over the pool) and disjoint slot ranges, so a whole fleet's ratings
// are a pure function of (population seed, session index, playback).
type SessionRater struct {
	rater    *Rater
	slotBase int
}

// SessionRater returns session k's feedback persona.
func (p *Population) SessionRater(session int) (*SessionRater, error) {
	if session < 0 {
		return nil, fmt.Errorf("mos: negative session index %d", session)
	}
	return &SessionRater{
		rater:    p.raters[session%len(p.raters)],
		slotBase: session * sessionSlotStride,
	}, nil
}

// RateChunk rates the just-rendered chunk i of the (possibly still partial)
// rendering, or reports ok=false when the rater skipped it.
func (s *SessionRater) RateChunk(rendering *qoe.Rendering, i int) (rating int, ok bool) {
	return s.rater.TryRateChunk(rendering, i, s.slotBase+i)
}
