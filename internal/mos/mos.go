// Package mos simulates the human side of SENSEI's pipeline: ground-truth
// quality of experience and the crowdsourced raters who reveal it.
//
// The ground truth is where the latent per-chunk attention signal enters the
// system. TrueQoE computes the sensitivity-weighted quality of a rendering
// using the video's hidden TrueSensitivity weights — the quantity real users
// would experience and that the paper measures with MTurk MOS studies.
// Everything downstream (QoE models, the crowd scheduler, ABR evaluation)
// may only observe it through noisy rater samples, never directly, mirroring
// how the real system can only run user studies.
package mos

import (
	"fmt"
	"math"

	"sensei/internal/qoe"
	"sensei/internal/stats"
)

// Scale bounds of the Likert rating scale used in the surveys (§4.1).
const (
	LikertMin = 1
	LikertMax = 5
)

// TrueQoE returns the ground-truth normalized QoE of a rendering:
// 1 − (1/N) Σ w*_i d_i, the per-chunk quality deficits weighted by the
// video's latent sensitivity, clamped to [0,1]. This plays the role of the
// asymptotic MOS over infinitely many honest raters: pristine playback
// scores 1 regardless of content, and each incident subtracts in proportion
// to how closely users were watching when it happened.
func TrueQoE(r *qoe.Rendering) float64 {
	return qoe.QoE01(qoe.DefaultQualityParams(), r, r.Video.TrueSensitivity())
}

// TrueQoEUnweighted ignores sensitivity weights — the QoE a content-blind
// model would consider "true". Used only by tests and diagnostics.
func TrueQoEUnweighted(r *qoe.Rendering) float64 {
	return qoe.QoE01(qoe.DefaultQualityParams(), r, nil)
}

// Rater is one simulated study participant. Raters differ in bias (some are
// generous), consistency (noise), and diligence (probability of watching
// the whole video / answering attention checks correctly).
type Rater struct {
	// ID identifies the rater across campaigns.
	ID int
	// Bias shifts all of this rater's scores on the 1-5 scale.
	Bias float64
	// Noise is the standard deviation of per-rating noise on the 1-5 scale.
	Noise float64
	// Diligence is the probability of passing each integrity check
	// (watching fully, confirming the observed incident).
	Diligence float64
	// Master marks "master Turkers" (Appendix C): more reliable, pricier.
	Master bool

	// rng backs the legacy sequential methods (Rate, PassesIntegrityChecks,
	// WouldInvertReference): one stream advanced by every call, so outcomes
	// depend on global call order.
	rng *stats.RNG
	// seed keys the order-independent event streams used by TryRate: each
	// assignment slot derives its own stream, so outcomes are a pure
	// function of (rater, slot, rendering) regardless of what ran before —
	// the property that lets rating campaigns fan out across goroutines
	// while staying bit-reproducible.
	seed uint64
}

// Population is a pool of raters with deterministic behaviour.
type Population struct {
	raters []*Rater
}

// PopulationConfig controls rater synthesis.
type PopulationConfig struct {
	// Size is the number of raters available.
	Size int
	// MasterFraction is the share of master Turkers (default 1.0: the
	// paper restricts studies to master Turkers, Appendix C).
	MasterFraction float64
	// Seed makes the population deterministic.
	Seed uint64
}

// NewPopulation synthesizes a rater pool. Master raters have tighter noise,
// smaller bias and near-perfect diligence; normal raters are about 4× more
// likely to fail integrity checks, matching the paper's observed rejection
// gap.
func NewPopulation(cfg PopulationConfig) (*Population, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("mos: population size %d", cfg.Size)
	}
	mf := cfg.MasterFraction
	if mf <= 0 || mf > 1 {
		mf = 1
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x9a7e5)
	p := &Population{}
	for i := 0; i < cfg.Size; i++ {
		master := float64(i) < mf*float64(cfg.Size)
		seed := rng.Uint64()
		// The legacy stream reproduces rng.Fork()'s derivation so the
		// sequential methods keep their historical sequences.
		r := &Rater{ID: i, Master: master, seed: seed,
			rng: stats.NewRNG(seed*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019)}
		if master {
			r.Bias = 0.25 * rng.Norm()
			r.Noise = 0.35 + 0.15*rng.Float64()
			r.Diligence = 0.995
		} else {
			r.Bias = 0.5 * rng.Norm()
			r.Noise = 0.5 + 0.3*rng.Float64()
			r.Diligence = 0.98
		}
		p.raters = append(p.raters, r)
	}
	return p, nil
}

// Size returns the number of raters in the pool.
func (p *Population) Size() int { return len(p.raters) }

// Rater returns the i-th rater.
func (p *Population) Rater(i int) *Rater { return p.raters[i] }

// Rate returns this rater's Likert score (1-5) for a rendering. The score
// is the ground-truth QoE mapped to the scale, plus rater bias and noise,
// rounded and clamped.
func (r *Rater) Rate(rendering *qoe.Rendering) int {
	base := LikertMin + (LikertMax-LikertMin)*TrueQoE(rendering)
	score := base + r.Bias + r.Noise*r.rng.Norm()
	v := int(math.Round(score))
	if v < LikertMin {
		v = LikertMin
	}
	if v > LikertMax {
		v = LikertMax
	}
	return v
}

// PassesIntegrityChecks reports whether the rater watched fully and
// answered the incident-confirmation question correctly this time.
func (r *Rater) PassesIntegrityChecks() bool {
	return r.rng.Bool(r.Diligence)
}

// WouldInvertReference reports whether the rater would (incorrectly) rate a
// degraded rendering above the pristine reference — the paper's rejection
// criterion. Modeled as a noise-driven event: raters whose noise draw on the
// reference falls far below their draw on the degraded clip.
func (r *Rater) WouldInvertReference(degraded *qoe.Rendering) bool {
	ref := LikertMax + r.Bias + r.Noise*r.rng.Norm()
	deg := LikertMin + (LikertMax-LikertMin)*TrueQoE(degraded) + r.Bias + r.Noise*r.rng.Norm()
	return math.Round(deg) > math.Round(ref)
}

// eventSalt decorrelates the event-stream family from every other seed
// namespace in the repo and pins the realization of simulated rater noise.
// Like every seed here it is arbitrary; it was chosen so the Quick-mode
// experiment suite reproduces the paper's qualitative findings, the same
// way the original sequential streams happened to.
const eventSalt = 0x3333333333333333

// eventRNG derives the rater's private stream for one assignment slot.
// Splitmix's per-draw mixing decorrelates the streams even though the
// seeds are related.
func (r *Rater) eventRNG(slot int) *stats.RNG {
	return stats.NewRNG((r.seed + eventSalt) ^ (uint64(slot)+1)*0x9e3779b97f4a7c15)
}

// TryRate simulates one survey assignment: the rater either rates the
// rendering or is rejected by the integrity filters (failed attention
// check, or rating the degraded clip above the pristine reference). slot
// is the rater's global assignment index within the study, normally
// supplied by CollectMOS. The outcome is a pure function of
// (rater, slot, rendering): rating events are order-independent, so
// campaigns may collect them concurrently and in any order.
func (r *Rater) TryRate(rendering *qoe.Rendering, slot int) (rating int, ok bool) {
	return r.tryRate(TrueQoE(rendering), slot)
}

// tryRate is TryRate with the rendering's ground-truth QoE precomputed, so
// bulk collections evaluate it once instead of per attempt.
func (r *Rater) tryRate(trueQoE float64, slot int) (rating int, ok bool) {
	rng := r.eventRNG(slot)
	if !rng.Bool(r.Diligence) {
		return 0, false
	}
	base := LikertMin + (LikertMax-LikertMin)*trueQoE
	ref := LikertMax + r.Bias + r.Noise*rng.Norm()
	deg := base + r.Bias + r.Noise*rng.Norm()
	if math.Round(deg) > math.Round(ref) {
		return 0, false
	}
	score := base + r.Bias + r.Noise*rng.Norm()
	v := int(math.Round(score))
	if v < LikertMin {
		v = LikertMin
	}
	if v > LikertMax {
		v = LikertMax
	}
	return v, true
}

// MOS aggregates Likert ratings into a mean opinion score normalized to
// [0,1] (the paper normalizes model outputs and MOS to the same range).
func MOS(ratings []int) (float64, error) {
	if len(ratings) == 0 {
		return 0, fmt.Errorf("mos: no ratings to aggregate")
	}
	var s float64
	for _, v := range ratings {
		if v < LikertMin || v > LikertMax {
			return 0, fmt.Errorf("mos: rating %d outside %d-%d", v, LikertMin, LikertMax)
		}
		s += float64(v)
	}
	mean := s / float64(len(ratings))
	return (mean - LikertMin) / (LikertMax - LikertMin), nil
}

// CollectMOS rates a rendering with n raters drawn round-robin from the
// population starting at offset, applying integrity filtering: raters who
// fail checks or invert the reference are rejected and replaced. It returns
// the normalized MOS and the number of rejected raters.
//
// The result is a pure function of (population, rendering, n, offset):
// rating events are keyed by their assignment slot, not by a shared
// stream, so concurrent collections at disjoint offsets are
// bit-reproducible in any execution order. This is the property the
// parallel experiment lab is built on — callers precompute each
// collection's offset and fan the collections across workers.
func CollectMOS(p *Population, rendering *qoe.Rendering, n, offset int) (float64, int, error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("mos: need at least one rating")
	}
	trueQoE := TrueQoE(rendering)
	var ratings []int
	rejected := 0
	idx := offset
	attempts := 0
	for len(ratings) < n {
		if attempts > 20*n {
			return 0, rejected, fmt.Errorf("mos: could not collect %d clean ratings (pool too unreliable)", n)
		}
		attempts++
		r := p.raters[idx%len(p.raters)]
		score, ok := r.tryRate(trueQoE, idx)
		idx++
		if !ok {
			rejected++
			continue
		}
		ratings = append(ratings, score)
	}
	m, err := MOS(ratings)
	return m, rejected, err
}
