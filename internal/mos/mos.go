// Package mos simulates the human side of SENSEI's pipeline: ground-truth
// quality of experience and the crowdsourced raters who reveal it.
//
// The ground truth is where the latent per-chunk attention signal enters the
// system. TrueQoE computes the sensitivity-weighted quality of a rendering
// using the video's hidden TrueSensitivity weights — the quantity real users
// would experience and that the paper measures with MTurk MOS studies.
// Everything downstream (QoE models, the crowd scheduler, ABR evaluation)
// may only observe it through noisy rater samples, never directly, mirroring
// how the real system can only run user studies.
package mos

import (
	"fmt"
	"math"

	"sensei/internal/qoe"
	"sensei/internal/stats"
)

// Scale bounds of the Likert rating scale used in the surveys (§4.1).
const (
	LikertMin = 1
	LikertMax = 5
)

// TrueQoE returns the ground-truth normalized QoE of a rendering:
// 1 − (1/N) Σ w*_i d_i, the per-chunk quality deficits weighted by the
// video's latent sensitivity, clamped to [0,1]. This plays the role of the
// asymptotic MOS over infinitely many honest raters: pristine playback
// scores 1 regardless of content, and each incident subtracts in proportion
// to how closely users were watching when it happened.
func TrueQoE(r *qoe.Rendering) float64 {
	return qoe.QoE01(qoe.DefaultQualityParams(), r, r.Video.TrueSensitivity())
}

// TrueQoEUnweighted ignores sensitivity weights — the QoE a content-blind
// model would consider "true". Used only by tests and diagnostics.
func TrueQoEUnweighted(r *qoe.Rendering) float64 {
	return qoe.QoE01(qoe.DefaultQualityParams(), r, nil)
}

// Rater is one simulated study participant. Raters differ in bias (some are
// generous), consistency (noise), and diligence (probability of watching
// the whole video / answering attention checks correctly).
type Rater struct {
	// ID identifies the rater across campaigns.
	ID int
	// Bias shifts all of this rater's scores on the 1-5 scale.
	Bias float64
	// Noise is the standard deviation of per-rating noise on the 1-5 scale.
	Noise float64
	// Diligence is the probability of passing each integrity check
	// (watching fully, confirming the observed incident).
	Diligence float64
	// Master marks "master Turkers" (Appendix C): more reliable, pricier.
	Master bool

	rng *stats.RNG
}

// Population is a pool of raters with deterministic behaviour.
type Population struct {
	raters []*Rater
}

// PopulationConfig controls rater synthesis.
type PopulationConfig struct {
	// Size is the number of raters available.
	Size int
	// MasterFraction is the share of master Turkers (default 1.0: the
	// paper restricts studies to master Turkers, Appendix C).
	MasterFraction float64
	// Seed makes the population deterministic.
	Seed uint64
}

// NewPopulation synthesizes a rater pool. Master raters have tighter noise,
// smaller bias and near-perfect diligence; normal raters are about 4× more
// likely to fail integrity checks, matching the paper's observed rejection
// gap.
func NewPopulation(cfg PopulationConfig) (*Population, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("mos: population size %d", cfg.Size)
	}
	mf := cfg.MasterFraction
	if mf <= 0 || mf > 1 {
		mf = 1
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x9a7e5)
	p := &Population{}
	for i := 0; i < cfg.Size; i++ {
		master := float64(i) < mf*float64(cfg.Size)
		r := &Rater{ID: i, Master: master, rng: rng.Fork()}
		if master {
			r.Bias = 0.25 * rng.Norm()
			r.Noise = 0.35 + 0.15*rng.Float64()
			r.Diligence = 0.995
		} else {
			r.Bias = 0.5 * rng.Norm()
			r.Noise = 0.5 + 0.3*rng.Float64()
			r.Diligence = 0.98
		}
		p.raters = append(p.raters, r)
	}
	return p, nil
}

// Size returns the number of raters in the pool.
func (p *Population) Size() int { return len(p.raters) }

// Rater returns the i-th rater.
func (p *Population) Rater(i int) *Rater { return p.raters[i] }

// Rate returns this rater's Likert score (1-5) for a rendering. The score
// is the ground-truth QoE mapped to the scale, plus rater bias and noise,
// rounded and clamped.
func (r *Rater) Rate(rendering *qoe.Rendering) int {
	base := LikertMin + (LikertMax-LikertMin)*TrueQoE(rendering)
	score := base + r.Bias + r.Noise*r.rng.Norm()
	v := int(math.Round(score))
	if v < LikertMin {
		v = LikertMin
	}
	if v > LikertMax {
		v = LikertMax
	}
	return v
}

// PassesIntegrityChecks reports whether the rater watched fully and
// answered the incident-confirmation question correctly this time.
func (r *Rater) PassesIntegrityChecks() bool {
	return r.rng.Bool(r.Diligence)
}

// WouldInvertReference reports whether the rater would (incorrectly) rate a
// degraded rendering above the pristine reference — the paper's rejection
// criterion. Modeled as a noise-driven event: raters whose noise draw on the
// reference falls far below their draw on the degraded clip.
func (r *Rater) WouldInvertReference(degraded *qoe.Rendering) bool {
	ref := LikertMax + r.Bias + r.Noise*r.rng.Norm()
	deg := LikertMin + (LikertMax-LikertMin)*TrueQoE(degraded) + r.Bias + r.Noise*r.rng.Norm()
	return math.Round(deg) > math.Round(ref)
}

// MOS aggregates Likert ratings into a mean opinion score normalized to
// [0,1] (the paper normalizes model outputs and MOS to the same range).
func MOS(ratings []int) (float64, error) {
	if len(ratings) == 0 {
		return 0, fmt.Errorf("mos: no ratings to aggregate")
	}
	var s float64
	for _, v := range ratings {
		if v < LikertMin || v > LikertMax {
			return 0, fmt.Errorf("mos: rating %d outside %d-%d", v, LikertMin, LikertMax)
		}
		s += float64(v)
	}
	mean := s / float64(len(ratings))
	return (mean - LikertMin) / (LikertMax - LikertMin), nil
}

// CollectMOS rates a rendering with n raters drawn round-robin from the
// population starting at offset, applying integrity filtering: raters who
// fail checks or invert the reference are rejected and replaced. It returns
// the normalized MOS and the number of rejected raters.
func CollectMOS(p *Population, rendering *qoe.Rendering, n, offset int) (float64, int, error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("mos: need at least one rating")
	}
	var ratings []int
	rejected := 0
	idx := offset
	attempts := 0
	for len(ratings) < n {
		if attempts > 20*n {
			return 0, rejected, fmt.Errorf("mos: could not collect %d clean ratings (pool too unreliable)", n)
		}
		attempts++
		r := p.raters[idx%len(p.raters)]
		idx++
		if !r.PassesIntegrityChecks() || r.WouldInvertReference(rendering) {
			rejected++
			continue
		}
		ratings = append(ratings, r.Rate(rendering))
	}
	m, err := MOS(ratings)
	return m, rejected, err
}
