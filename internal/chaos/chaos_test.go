package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPolicyValidate(t *testing.T) {
	good := Uniform(1, 0.1)
	if err := good.Validate(); err != nil {
		t.Fatalf("Uniform policy invalid: %v", err)
	}
	cases := []struct {
		name string
		p    Policy
	}{
		{"rate >= 1", Policy{Endpoints: map[Kind]Spec{KindSegment: {Rate: 1}}}},
		{"rate < 0", Policy{Endpoints: map[Kind]Spec{KindSegment: {Rate: -0.1}}}},
		{"unknown kind", Policy{Endpoints: map[Kind]Spec{"bogus": {Rate: 0.1}}}},
		{"unknown mode", Policy{Endpoints: map[Kind]Spec{KindSegment: {Rate: 0.1, Modes: []Mode{"melt"}}}}},
		{"truncate on manifest", Policy{Endpoints: map[Kind]Spec{KindManifest: {Rate: 0.1, Modes: []Mode{ModeTruncate}}}}},
		{"negative ceiling", Policy{MaxConsecutive: -1}},
		{"truncate fraction 1", Policy{TruncateFraction: 1}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.p)
		}
	}
}

// TestInjectorDeterministicReplay drives one injector through interleaved
// streams and proves three things: a second injector with the same policy
// produces the identical decision sequence, the journal matches
// Policy.Replay exactly, and the ledger counts equal the journal.
func TestInjectorDeterministicReplay(t *testing.T) {
	p := Uniform(0xfeed, 0.3)
	a, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewInjector(p)

	keys := []string{"s0001", "s0002", "s0003"}
	var got []Mode
	for i := 0; i < 200; i++ {
		key := keys[i%len(keys)]
		kind := Kinds()[i%len(Kinds())]
		ma := a.Decide(key, kind)
		if mb := b.Decide(key, kind); mb != ma {
			t.Fatalf("iteration %d: injectors disagree (%q vs %q)", i, ma, mb)
		}
		got = append(got, ma)
	}

	// Replay every journaled fault from the seed.
	journal := a.Journal()
	if len(journal) == 0 {
		t.Fatal("no faults injected at rate 0.3 over 200 requests — seed needs changing")
	}
	maxSeq := map[streamKey]uint64{}
	for _, e := range journal {
		sk := streamKey{e.Key, e.Kind}
		if e.Seq+1 > maxSeq[sk] {
			maxSeq[sk] = e.Seq + 1
		}
	}
	replayed := map[streamKey][]Mode{}
	for sk, n := range maxSeq {
		replayed[sk] = p.Replay(sk.key, sk.kind, n)
	}
	for _, e := range journal {
		if m := replayed[streamKey{e.Key, e.Kind}][e.Seq]; m != e.Mode {
			t.Fatalf("journal event %+v not reproduced by Replay (got %q)", e, m)
		}
	}

	// Ledger equals journal.
	st := a.Stats()
	if st.Total != int64(len(journal)) {
		t.Fatalf("Stats.Total = %d, journal has %d events", st.Total, len(journal))
	}
	if st.JournalDropped != 0 {
		t.Fatalf("JournalDropped = %d, want 0", st.JournalDropped)
	}
	var faults int64
	for _, m := range got {
		if m != "" {
			faults++
		}
	}
	if faults != st.Total {
		t.Fatalf("observed %d faults, ledger says %d", faults, st.Total)
	}
}

// TestInjectorFaultCeiling proves no stream ever sees more than
// MaxConsecutive back-to-back faults, even at a near-certain fault rate.
func TestInjectorFaultCeiling(t *testing.T) {
	p := Policy{
		Seed:           7,
		Endpoints:      map[Kind]Spec{KindSegment: {Rate: 0.99}},
		MaxConsecutive: 2,
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	run, worst := 0, 0
	for i := 0; i < 1000; i++ {
		if in.Decide("s", KindSegment) != "" {
			run++
			if run > worst {
				worst = run
			}
		} else {
			run = 0
		}
	}
	if worst != 2 {
		t.Fatalf("worst consecutive-fault run = %d, want exactly the ceiling 2 at rate 0.99", worst)
	}
}

// TestMiddlewareModes exercises each failure shape through a real HTTP
// server: 503 replies, connection aborts (reset and stall), and the
// truncation plan handed to a cooperating handler via request context.
func TestMiddlewareModes(t *testing.T) {
	for _, mode := range []Mode{ModeError, ModeReset, ModeStall, ModeTruncate} {
		t.Run(string(mode), func(t *testing.T) {
			p := Policy{
				Seed:             3,
				Endpoints:        map[Kind]Spec{KindSegment: {Rate: 0.99, Modes: []Mode{mode}}},
				MaxConsecutive:   1000,
				StallDelay:       5 * time.Millisecond,
				TruncateFraction: 0.25,
			}
			in, err := NewInjector(p)
			if err != nil {
				t.Fatal(err)
			}
			handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if f, ok := TruncationFraction(r.Context()); ok {
					io.WriteString(w, "truncate:")
					if f != 0.25 {
						t.Errorf("truncation fraction %v, want 0.25", f)
					}
					return
				}
				io.WriteString(w, "clean")
			})
			classify := func(r *http.Request) (Kind, string, bool) {
				if strings.HasPrefix(r.URL.Path, "/skip") {
					return "", "", false
				}
				return KindSegment, r.Header.Get(KeyHeader), true
			}
			srv := httptest.NewServer(in.Middleware(handler, classify))
			defer srv.Close()
			client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
			defer client.CloseIdleConnections()

			// Unclassified routes are never faulted.
			resp, err := client.Get(srv.URL + "/skip")
			if err != nil {
				t.Fatalf("unclassified route errored: %v", err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(body) != "clean" {
				t.Fatalf("unclassified route body = %q", body)
			}

			// Find a faulted sequence position from the replay and hit it.
			decisions := p.Replay("k", KindSegment, 20)
			faultAt := -1
			for i, d := range decisions {
				if d == mode {
					faultAt = i
					break
				}
			}
			if faultAt < 0 {
				t.Fatal("no fault in first 20 decisions at rate 0.99")
			}
			for i := 0; i <= faultAt; i++ {
				req, _ := http.NewRequest(http.MethodGet, srv.URL+"/seg", nil)
				req.Header.Set(KeyHeader, "k")
				resp, err := client.Do(req)
				faulted := i == faultAt
				switch mode {
				case ModeError:
					if err != nil {
						t.Fatalf("request %d: %v", i, err)
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if faulted && (resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(InjectedHeader) != string(ModeError)) {
						t.Fatalf("request %d: status %d, header %q — want injected 503", i, resp.StatusCode, resp.Header.Get(InjectedHeader))
					}
					if !faulted && string(body) != "clean" {
						t.Fatalf("request %d: body %q, want clean", i, body)
					}
				case ModeReset, ModeStall:
					if faulted {
						if err == nil {
							resp.Body.Close()
							t.Fatalf("request %d: expected a transport error from %s", i, mode)
						}
					} else {
						if err != nil {
							t.Fatalf("request %d: %v", i, err)
						}
						resp.Body.Close()
					}
				case ModeTruncate:
					if err != nil {
						t.Fatalf("request %d: %v", i, err)
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					want := "clean"
					if faulted {
						want = "truncate:"
					}
					if string(body) != want {
						t.Fatalf("request %d: body %q, want %q", i, body, want)
					}
				}
			}
			if st := in.Stats(); st.ByMode[string(mode)] != 1 || st.Total != 1 {
				t.Fatalf("ledger after one fault: %+v", st)
			}
		})
	}
}

// TestMiddlewareAnonKey confirms keyless requests share the anon stream.
func TestMiddlewareAnonKey(t *testing.T) {
	p := Uniform(11, 0.5)
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		in.Decide("", KindRating)
	}
	want := p.Replay(anonKey, KindRating, 10)
	var injected int64
	for _, m := range want {
		if m != "" {
			injected++
		}
	}
	if st := in.Stats(); st.ByKind[string(KindRating)] != injected {
		t.Fatalf("anon stream ledger %d, replay says %d", st.ByKind[string(KindRating)], injected)
	}
}
