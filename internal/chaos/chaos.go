// Package chaos is the deterministic fault-injection plane of the SENSEI
// testbed. A seeded Policy describes, per endpoint kind, how often and in
// which modes the origin should fail requests; an Injector mounts that
// policy as HTTP middleware and keeps an exact ledger of everything it
// injected.
//
// Determinism is the whole point: every fault decision is a pure hash of
// (policy seed, stream key, endpoint kind, per-stream sequence number), so
// a fleet run that saw a fault can be replayed — Policy.Replay recomputes
// the identical decision sequence from the seed alone, and tests assert the
// injector's journal against it. The stream key is chosen by the client
// (the KeyHeader request header, one stable key per session slot), which
// keeps decisions independent of scheduling: whichever goroutine's request
// arrives first, stream s's third segment GET always meets the same fate.
//
// The injector faults requests before they reach a handler (5xx replies,
// connection resets, stalls), so a faulted attempt has no server-side
// effects and the origin's byte/segment/session ledgers stay exact under
// retry. The one exception is truncation, which must deliver a partial
// body: the middleware plants a truncation plan in the request context and
// the segment handler cooperates, counting only the bytes it actually
// flushed before hanging up.
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"time"

	"sensei/internal/vclock"
)

// Kind names an endpoint class of the origin's API surface.
type Kind string

const (
	// KindSession covers session control ops: POST /session and DELETE
	// /session/{id}.
	KindSession Kind = "session"
	// KindManifest covers GET /v/{video}/manifest.mpd.
	KindManifest Kind = "manifest"
	// KindSegment covers GET /v/{video}/segment/{chunk}/{rung}.
	KindSegment Kind = "segment"
	// KindWeights covers GET /weights — faulting it emulates transient
	// weight-service unavailability.
	KindWeights Kind = "weights"
	// KindRating covers POST /rating.
	KindRating Kind = "rating"
)

// Kinds returns every endpoint kind, in stable order.
func Kinds() []Kind {
	return []Kind{KindSession, KindManifest, KindSegment, KindWeights, KindRating}
}

// Mode is the failure shape of one injected fault.
type Mode string

const (
	// ModeError answers 503 Service Unavailable without running the handler.
	ModeError Mode = "error"
	// ModeReset aborts the connection before the handler runs — the client
	// sees a transport error (reset/EOF), never an HTTP status.
	ModeReset Mode = "reset"
	// ModeStall serves dead air for the policy's StallDelay, then aborts
	// the connection: a slow, silent wire rather than a fast failure.
	ModeStall Mode = "stall"
	// ModeTruncate (segment endpoints only) declares the full
	// Content-Length but delivers a prefix of the body before hanging up.
	ModeTruncate Mode = "truncate"
)

// KeyHeader carries the client-chosen chaos stream key on every request.
// Keying fault streams on a stable caller identity (fleet slot index)
// instead of the random session ID is what makes a whole fleet run
// replayable from one seed.
const KeyHeader = "X-Sensei-Chaos-Key"

// InjectedHeader marks a faulted response with its mode, for debugging with
// curl; reconciliation never relies on it (resets carry no headers at all).
const InjectedHeader = "X-Sensei-Chaos"

// anonKey buckets requests that carry neither KeyHeader nor a session ID.
const anonKey = "anon"

// Defaults for zero Policy fields.
const (
	DefaultMaxConsecutive   = 2
	DefaultStallDelay       = 25 * time.Millisecond
	DefaultTruncateFraction = 0.5
)

// Spec is the fault profile of one endpoint kind.
type Spec struct {
	// Rate is the per-request fault probability in [0, 1).
	Rate float64 `json:"rate"`
	// Modes is the mode mix faults are drawn from, uniformly. Empty means
	// the kind's default mix (DefaultModes).
	Modes []Mode `json:"modes,omitempty"`
}

// DefaultModes returns the mode mix used when a Spec leaves Modes empty:
// every kind can error, reset, or stall; segments can also truncate.
func DefaultModes(k Kind) []Mode {
	if k == KindSegment {
		return []Mode{ModeError, ModeReset, ModeStall, ModeTruncate}
	}
	return []Mode{ModeError, ModeReset, ModeStall}
}

// Policy is a complete, seeded fault-injection configuration.
type Policy struct {
	// Seed keys every fault decision; the same seed replays the same run.
	Seed uint64 `json:"seed"`
	// Endpoints maps each endpoint kind to its fault profile. Kinds absent
	// from the map are never faulted.
	Endpoints map[Kind]Spec `json:"endpoints"`
	// MaxConsecutive is the fault ceiling: the longest run of back-to-back
	// faults one (key, kind) stream can see before a clean request is
	// forced. Keeping it below the client's retry budget guarantees every
	// wire operation eventually succeeds — the fleet chaos proof depends
	// on exactly that inequality. 0 means DefaultMaxConsecutive.
	MaxConsecutive int `json:"max_consecutive,omitempty"`
	// StallDelay is how long ModeStall serves dead air before hanging up.
	StallDelay time.Duration `json:"stall_delay,omitempty"`
	// TruncateFraction is the fraction of the declared Content-Length a
	// ModeTruncate fault actually delivers, clamped to at least one byte
	// and at most one byte short of the full body.
	TruncateFraction float64 `json:"truncate_fraction,omitempty"`
}

// Uniform returns a policy faulting every endpoint kind at the same rate
// with each kind's default mode mix.
func Uniform(seed uint64, rate float64) Policy {
	eps := make(map[Kind]Spec, len(Kinds()))
	for _, k := range Kinds() {
		eps[k] = Spec{Rate: rate}
	}
	return Policy{Seed: seed, Endpoints: eps}
}

// Validate rejects rates outside [0, 1), unknown kinds or modes, and
// ModeTruncate on non-segment kinds (only the segment handler cooperates
// with truncation, and an un-realized fault would break the two-sided
// ledger equality reconciliation asserts).
func (p *Policy) Validate() error {
	known := map[Kind]bool{}
	for _, k := range Kinds() {
		known[k] = true
	}
	for kind, spec := range p.Endpoints {
		if !known[kind] {
			return fmt.Errorf("chaos: unknown endpoint kind %q", kind)
		}
		if spec.Rate < 0 || spec.Rate >= 1 {
			return fmt.Errorf("chaos: %s rate %v outside [0, 1)", kind, spec.Rate)
		}
		for _, m := range spec.Modes {
			switch m {
			case ModeError, ModeReset, ModeStall:
			case ModeTruncate:
				if kind != KindSegment {
					return fmt.Errorf("chaos: mode %q is segment-only, configured on %q", m, kind)
				}
			default:
				return fmt.Errorf("chaos: unknown mode %q on %q", m, kind)
			}
		}
	}
	if p.MaxConsecutive < 0 {
		return fmt.Errorf("chaos: MaxConsecutive %d < 0", p.MaxConsecutive)
	}
	if p.StallDelay < 0 {
		return fmt.Errorf("chaos: StallDelay %v < 0", p.StallDelay)
	}
	if p.TruncateFraction < 0 || p.TruncateFraction >= 1 {
		return fmt.Errorf("chaos: TruncateFraction %v outside [0, 1)", p.TruncateFraction)
	}
	return nil
}

func (p *Policy) maxConsecutive() int {
	if p.MaxConsecutive <= 0 {
		return DefaultMaxConsecutive
	}
	return p.MaxConsecutive
}

func (p *Policy) stallDelay() time.Duration {
	if p.StallDelay <= 0 {
		return DefaultStallDelay
	}
	return p.StallDelay
}

func (p *Policy) truncateFraction() float64 {
	if p.TruncateFraction <= 0 {
		return DefaultTruncateFraction
	}
	return p.TruncateFraction
}

// decide is the pure fault function: given a stream position (seq) and the
// length of the current consecutive-fault run, it returns the injected mode
// ("" for a clean request) and the updated run length. Injector and Replay
// both fold this same function, which is what makes the journal provable.
func (p *Policy) decide(key string, kind Kind, seq uint64, run int) (Mode, int) {
	spec, ok := p.Endpoints[kind]
	if !ok || spec.Rate <= 0 {
		return "", 0
	}
	// The fault ceiling: after MaxConsecutive straight faults the stream is
	// forced a clean request, bounding how much adversity any single wire
	// operation can meet.
	if run >= p.maxConsecutive() {
		return "", 0
	}
	h := p.hash(key, kind, seq)
	if float64(h>>11)/(1<<53) >= spec.Rate {
		return "", 0
	}
	modes := spec.Modes
	if len(modes) == 0 {
		modes = DefaultModes(kind)
	}
	return modes[mix64(h)%uint64(len(modes))], run + 1
}

// hash folds (seed, key, kind, seq) into one well-mixed draw.
func (p *Policy) hash(key string, kind Kind, seq uint64) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key))
	f.Write([]byte{0})
	f.Write([]byte(kind))
	return mix64(p.Seed ^ mix64(f.Sum64()) ^ mix64(seq*0x9e3779b97f4a7c15+1))
}

// Replay recomputes the first n decisions of one (key, kind) stream from
// the seed alone: element i is the mode injected at sequence i ("" for
// clean). Tests replay the injector's journal with it to prove every fault
// a run saw is reproducible.
func (p *Policy) Replay(key string, kind Kind, n uint64) []Mode {
	out := make([]Mode, n)
	run := 0
	for seq := uint64(0); seq < n; seq++ {
		out[seq], run = p.decide(key, kind, seq, run)
	}
	return out
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stats is the injector's fault ledger, reported under origin /stats and
// reconciled exactly against the clients' survived-fault counters.
type Stats struct {
	// Total is the number of injected faults across all kinds.
	Total int64 `json:"total"`
	// ByKind counts injected faults per endpoint kind.
	ByKind map[string]int64 `json:"by_kind,omitempty"`
	// ByMode counts injected faults per failure mode.
	ByMode map[string]int64 `json:"by_mode,omitempty"`
	// JournalDropped counts faults evicted from the bounded replay journal
	// (0 in any run small enough to reconcile).
	JournalDropped int64 `json:"journal_dropped,omitempty"`
}

// Event is one journaled fault: stream identity, position, and mode —
// everything Replay needs to prove it again from the seed.
type Event struct {
	Key  string `json:"key"`
	Kind Kind   `json:"kind"`
	Seq  uint64 `json:"seq"`
	Mode Mode   `json:"mode"`
}

// journalCap bounds the replay journal; far beyond any reconciled run.
const journalCap = 1 << 16

type streamKey struct {
	key  string
	kind Kind
}

type streamState struct {
	seq uint64
	run int
}

// Injector evaluates a Policy request by request, keeping per-stream
// sequence state, the fault ledger, and the replay journal.
type Injector struct {
	policy Policy
	clock  vclock.Clock

	mu       sync.Mutex
	streams  map[streamKey]*streamState
	byKind   map[string]int64
	byMode   map[string]int64
	total    int64
	dropped  int64
	journal  []Event
	observer func(Event)
}

// NewInjector validates p and returns an injector for it, stalling on the
// wall clock. Hosts running under a simulated clock inject it with
// SetClock before serving.
func NewInjector(p Policy) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		policy:  p,
		clock:   vclock.NewReal(),
		streams: make(map[streamKey]*streamState),
		byKind:  make(map[string]int64),
		byMode:  make(map[string]int64),
	}, nil
}

// SetClock rebinds the clock ModeStall faults sleep on, so stalls consume
// simulated time under a virtual clock — fault decisions themselves are a
// pure hash of the seed and never read the clock, which is what keeps
// Policy.Replay journals byte-identical between real and virtual runs.
// Call before serving; the clock is not synchronized against in-flight
// requests.
func (in *Injector) SetClock(c vclock.Clock) {
	if c != nil {
		in.clock = c
	}
}

// Policy returns the injector's (validated) policy.
func (in *Injector) Policy() Policy { return in.policy }

// SetObserver registers a callback invoked for every injected fault, with
// the same Event the journal records — the event plane's mirror hook. The
// callback runs on the request path under the injector's mutex, so it must
// be non-blocking and cheap (a ring emit qualifies). Call before serving.
func (in *Injector) SetObserver(fn func(Event)) {
	in.mu.Lock()
	in.observer = fn
	in.mu.Unlock()
}

// Decide advances the (key, kind) stream one position and returns the fault
// mode to inject, "" for a clean request. Faults are ledgered and
// journaled here, atomically with the decision.
func (in *Injector) Decide(key string, kind Kind) Mode {
	if key == "" {
		key = anonKey
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	sk := streamKey{key, kind}
	st := in.streams[sk]
	if st == nil {
		st = &streamState{}
		in.streams[sk] = st
	}
	mode, run := in.policy.decide(key, kind, st.seq, st.run)
	seq := st.seq
	st.seq++
	st.run = run
	if mode == "" {
		return ""
	}
	in.total++
	in.byKind[string(kind)]++
	in.byMode[string(mode)]++
	if len(in.journal) < journalCap {
		in.journal = append(in.journal, Event{Key: key, Kind: kind, Seq: seq, Mode: mode})
	} else {
		in.dropped++
	}
	if in.observer != nil {
		in.observer(Event{Key: key, Kind: kind, Seq: seq, Mode: mode})
	}
	return mode
}

// Stats snapshots the fault ledger.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := Stats{Total: in.total, JournalDropped: in.dropped}
	if len(in.byKind) > 0 {
		s.ByKind = make(map[string]int64, len(in.byKind))
		for k, v := range in.byKind {
			s.ByKind[k] = v
		}
	}
	if len(in.byMode) > 0 {
		s.ByMode = make(map[string]int64, len(in.byMode))
		for k, v := range in.byMode {
			s.ByMode[k] = v
		}
	}
	return s
}

// Journal returns a copy of the replay journal, in injection order.
func (in *Injector) Journal() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.journal))
	copy(out, in.journal)
	return out
}

// Middleware wraps next with the fault plane. classify maps a request to
// its endpoint kind and stream key, or reports false for routes that must
// never fault (/stats, /refresh — reconciliation and operator controls stay
// reachable no matter how unhealthy the data plane is).
//
// Error and reset/stall faults short-circuit before next runs, so they
// leave no server-side trace beyond the injector's ledger; truncation is
// planted in the request context for the segment handler to realize
// cooperatively.
func (in *Injector) Middleware(next http.Handler, classify func(*http.Request) (Kind, string, bool)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		kind, key, ok := classify(r)
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		switch mode := in.Decide(key, kind); mode {
		case "":
		case ModeError:
			w.Header().Set(InjectedHeader, string(ModeError))
			http.Error(w, "chaos: injected fault", http.StatusServiceUnavailable)
			return
		case ModeReset:
			// ErrAbortHandler is net/http's sanctioned way to kill the
			// connection without a reply; the server recovers it silently.
			panic(http.ErrAbortHandler)
		case ModeStall:
			// Dead air, then hang up. The client-side request context bounds
			// the wait, and either ending (our abort or the client's
			// timeout) is one client-visible fault — exactly one, which the
			// two-sided ledger equality depends on. The stall sleeps on the
			// injected clock: under a virtual clock the delay is simulated
			// time charged to the waiting client's activity unit, so the
			// fault schedule and its cost replay identically in both modes.
			in.clock.Sleep(r.Context(), in.policy.stallDelay())
			panic(http.ErrAbortHandler)
		case ModeTruncate:
			r = r.WithContext(WithTruncation(r.Context(), in.policy.truncateFraction()))
		}
		next.ServeHTTP(w, r)
	})
}

type truncationKey struct{}

// WithTruncation plants a truncation plan (the fraction of the declared
// body to deliver) in ctx for a cooperating handler.
func WithTruncation(ctx context.Context, fraction float64) context.Context {
	return context.WithValue(ctx, truncationKey{}, fraction)
}

// TruncationFraction reports the truncation plan planted in ctx, if any.
func TruncationFraction(ctx context.Context) (float64, bool) {
	f, ok := ctx.Value(truncationKey{}).(float64)
	return f, ok
}
