// Command senseibench regenerates the paper's tables and figures.
//
// Usage:
//
//	senseibench [-mode quick|full] [experiment ...]
//
// With no arguments it runs every experiment. Experiment ids: table1, fig1,
// fig2, fig3, fig4, fig5, fig6, fig12a, fig12b, fig12c, fig13, fig14,
// fig15, fig16, fig17, fig18, fig20, sanity.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sensei/internal/experiments"
)

// renderer is anything an experiment runner returns.
type renderer interface{ Render() string }

func main() {
	mode := flag.String("mode", "quick", "experiment scale: quick or full")
	flag.Parse()

	var labMode experiments.Mode
	switch *mode {
	case "quick":
		labMode = experiments.Quick
	case "full":
		labMode = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "senseibench: unknown mode %q (want quick or full)\n", *mode)
		os.Exit(2)
	}
	lab := experiments.NewLab(labMode)

	runners := map[string]func() (renderer, error){
		"table1":    func() (renderer, error) { return lab.Table1(), nil },
		"fig1":      func() (renderer, error) { return lab.Fig1() },
		"fig2":      func() (renderer, error) { return lab.Fig2() },
		"fig3":      func() (renderer, error) { return lab.Fig3() },
		"fig4":      func() (renderer, error) { return lab.Fig4() },
		"fig5":      func() (renderer, error) { return lab.Fig5() },
		"fig6":      func() (renderer, error) { return lab.Fig6() },
		"fig12a":    func() (renderer, error) { return lab.Fig12a() },
		"fig12b":    func() (renderer, error) { return lab.Fig12b() },
		"fig12c":    func() (renderer, error) { return lab.Fig12c() },
		"fig13":     func() (renderer, error) { return lab.Fig13() },
		"fig14":     func() (renderer, error) { return lab.Fig14() },
		"fig15":     func() (renderer, error) { return lab.Fig15() },
		"fig16":     func() (renderer, error) { return lab.Fig16() },
		"fig17":     func() (renderer, error) { return lab.Fig17() },
		"fig18":     func() (renderer, error) { return lab.Fig18() },
		"fig20":     func() (renderer, error) { return lab.Fig20() },
		"sanity":    func() (renderer, error) { return lab.Sanity() },
		"appendixb": func() (renderer, error) { return lab.AppendixB() },
	}
	order := []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig12a", "fig12b", "fig12c", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig20", "sanity", "appendixb",
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = order
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "senseibench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}
