// Command senseibench regenerates the paper's tables and figures.
//
// Usage:
//
//	senseibench [-mode quick|full] [-benchjson file]
//	            [-check] [-baseline BENCH_baseline.json] [-checktol 4]
//	            [experiment ...]
//
// With no arguments it runs every experiment. Experiment ids: table1, fig1,
// fig2, fig3, fig4, fig5, fig6, fig12a, fig12b, fig12c, fig13, fig14,
// fig15, fig16, fig17, fig18, fig20, sanity.
//
// With -benchjson, per-experiment wall-clock and the subsystem
// micro-benchmarks (planner tree search vs brute-force oracle, origin
// segment path, fleet throughput on the wall and virtual clocks,
// weight-refresh latencies, ingest ratings/sec) are written as JSON, giving CI a perf trajectory across PRs
// (BENCH_baseline.json holds the committed baseline).
//
// With -check the same micro-benchmarks run and are compared against the
// committed baseline within a tolerance factor (-checktol, default 4x —
// generous because CI machines vary); any metric regressing past it exits
// non-zero. Throughput metrics may not drop below baseline/tol, latency
// metrics may not exceed baseline*tol; baseline fields that are zero or
// absent are skipped, so older baselines stay checkable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	"sensei/internal/abr"
	"sensei/internal/chaos"
	"sensei/internal/experiments"
	"sensei/internal/fleet"
	"sensei/internal/ingest"
	"sensei/internal/origin"
	"sensei/internal/par"
	"sensei/internal/player"
	"sensei/internal/qlog"
	"sensei/internal/router"
	"sensei/internal/trace"
	"sensei/internal/vclock"
	"sensei/internal/video"
)

// renderer is anything an experiment runner returns.
type renderer interface{ Render() string }

// benchReport is the -benchjson wire format.
type benchReport struct {
	Mode           string             `json:"mode"`
	GoVersion      string             `json:"go_version"`
	GOMAXPROCS     int                `json:"gomaxprocs"`
	Planner        plannerBench       `json:"planner"`
	Origin         originBench        `json:"origin"`
	Router         routerBench        `json:"router"`
	Fleet          fleetBench         `json:"fleet"`
	Refresh        refreshBench       `json:"refresh"`
	Ingest         ingestBench        `json:"ingest"`
	Qlog           qlogBench          `json:"qlog"`
	ExperimentSec  map[string]float64 `json:"experiment_sec"`
	TotalSec       float64            `json:"total_sec"`
	ExperimentList []string           `json:"experiment_list"`
}

// plannerBench compares one horizon-5 SENSEI-Fugu decision under the tree
// search and the brute-force oracle.
type plannerBench struct {
	TreeNsPerDecision  float64 `json:"tree_ns_per_decision"`
	BruteNsPerDecision float64 `json:"brute_ns_per_decision"`
	Speedup            float64 `json:"speedup"`
}

// timeDecide measures the mean cost of one planning decision.
func timeDecide(m player.Algorithm, s *player.State, iters int) float64 {
	m.Decide(s) // warm caches
	start := time.Now()
	for i := 0; i < iters; i++ {
		m.Decide(s)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// plannerMicroBench runs the MPC planner comparison.
func plannerMicroBench() plannerBench {
	v := video.TestSet()[0]
	s := &player.State{
		Video:         v,
		ChunkIndex:    12,
		BufferSec:     7.5,
		LastRung:      2,
		ThroughputBps: []float64{1.9e6, 2.4e6, 1.6e6, 2.1e6, 2.8e6},
		DownloadSec:   []float64{3.8, 3.1, 4.4, 3.5, 2.7},
		Weights:       v.TrueSensitivity(),
	}
	tree := abr.NewSenseiFugu()
	brute := abr.NewSenseiFugu()
	brute.BruteForce = true
	out := plannerBench{
		TreeNsPerDecision:  timeDecide(tree, s, 2000),
		BruteNsPerDecision: timeDecide(brute, s, 50),
	}
	out.Speedup = out.BruteNsPerDecision / out.TreeNsPerDecision
	return out
}

// originBench measures the multi-tenant origin's segment hot path over
// real TCP with shaping effectively disabled (a near-infinite-rate
// trace): routing, session lookup and the shared-pattern streaming loop.
type originBench struct {
	SegmentsPerSec float64 `json:"segments_per_sec"`
	MBPerSec       float64 `json:"mb_per_sec"`
	// SegmentsPerSecParallel is the aggregate rate with 8 sessions streaming
	// bottom-rung segments concurrently against one origin — the
	// striped-registry scaling metric (single origin arm; the router bench
	// is the sharded arm).
	SegmentsPerSecParallel float64 `json:"segments_per_sec_parallel"`
	// ChaosIdleSegmentsPerSec re-measures the same path with the chaos
	// middleware mounted at rate 0 — present but never firing — and
	// ChaosIdleOverheadPct is the relative cost of that presence. The
	// contract is "chaos off the hot path": a disabled-but-mounted fault
	// plane must be effectively free.
	ChaosIdleSegmentsPerSec float64 `json:"chaos_idle_segments_per_sec"`
	ChaosIdleOverheadPct    float64 `json:"chaos_idle_overhead_pct"`
}

// benchSessions is how many concurrent sessions the parallel origin and
// router micro-benchmarks stream.
const benchSessions = 8

// parallelSegmentsPerSec drives perSession fetches per joined session with
// one worker per session and returns the aggregate segment rate.
func parallelSegmentsPerSec(c *origin.SegmentBenchClient, perSession int) (float64, error) {
	n := c.Sessions() * perSession
	start := time.Now()
	if err := par.ForEachN(n, c.Sessions(), func(i int) error {
		return c.FetchSession(i % c.Sessions())
	}); err != nil {
		return 0, err
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// originMicroBench serves one session a top-rung segment in a tight loop
// via the harness shared with BenchmarkOriginSegment, measures the parallel
// bottom-rung rate with benchSessions concurrent streams, and prices the
// chaos middleware's mere presence with an idle (zero-rate) policy.
//
// The chaos-idle comparison interleaves warmed, paired measurement blocks
// on both harnesses and takes each side's best block: early baselines
// measured two cold harnesses back to back, and scheduler noise routinely
// exceeded the effect being measured, producing a nonsense negative
// overhead. Best-of-paired-blocks is the standard way to compare two rates
// whose difference is below the noise floor; the overhead is clamped at 0
// because the middleware cannot make serving faster.
func originMicroBench() (originBench, error) {
	const (
		warmup = 40
		block  = 100
		rounds = 3
	)
	plain, err := origin.NewSegmentBenchHarnessWithChaos(nil)
	if err != nil {
		return originBench{}, err
	}
	defer plain.Close()
	idlePolicy := chaos.Uniform(1, 0)
	idle, err := origin.NewSegmentBenchHarnessWithChaos(&idlePolicy)
	if err != nil {
		return originBench{}, err
	}
	defer idle.Close()

	measure := func(h *origin.SegmentBenchHarness, n int) (float64, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := h.Fetch(); err != nil {
				return 0, err
			}
		}
		return float64(n) / time.Since(start).Seconds(), nil
	}
	if _, err := measure(plain, warmup); err != nil {
		return originBench{}, err
	}
	if _, err := measure(idle, warmup); err != nil {
		return originBench{}, err
	}
	var bestPlain, bestIdle float64
	for r := 0; r < rounds; r++ {
		p, err := measure(plain, block)
		if err != nil {
			return originBench{}, err
		}
		c, err := measure(idle, block)
		if err != nil {
			return originBench{}, err
		}
		bestPlain = max(bestPlain, p)
		bestIdle = max(bestIdle, c)
	}
	overhead := (bestPlain - bestIdle) / bestPlain * 100
	if overhead < 0 {
		overhead = 0
	}

	pc, err := origin.NewParallelSegmentBenchHarness(benchSessions)
	if err != nil {
		return originBench{}, err
	}
	defer pc.Close()
	parallel, err := parallelSegmentsPerSec(pc, 100)
	if err != nil {
		return originBench{}, err
	}

	return originBench{
		SegmentsPerSec:          bestPlain,
		MBPerSec:                bestPlain * float64(plain.SegmentBytes) / 1e6,
		SegmentsPerSecParallel:  parallel,
		ChaosIdleSegmentsPerSec: bestIdle,
		ChaosIdleOverheadPct:    overhead,
	}, nil
}

// routerBench measures the multi-origin router's parallel segment rate:
// benchSessions sessions spread by consistent hash across Shards origin
// shards behind one listener, streaming bottom-rung segments concurrently.
// Comparable to originBench.SegmentsPerSecParallel — same client, same
// payload, sharded serving plane.
type routerBench struct {
	Shards         int     `json:"shards"`
	SegmentsPerSec float64 `json:"segments_per_sec"`
}

// routerMicroBench mirrors BenchmarkRouterSegment.
func routerMicroBench() (routerBench, error) {
	const shards = 4
	c, err := router.NewSegmentBenchHarness(shards, benchSessions)
	if err != nil {
		return routerBench{}, err
	}
	defer c.Close()
	rate, err := parallelSegmentsPerSec(c, 100)
	if err != nil {
		return routerBench{}, err
	}
	return routerBench{Shards: shards, SegmentsPerSec: rate}, nil
}

// refreshBench measures the live sensitivity plane's control-plane
// latencies: publishing a new profile epoch on a warm weight service
// (atomic swap + waiter release + disk persist) and taking a reader-side
// snapshot — the per-decision cost every ABR consumer pays.
type refreshBench struct {
	PublishNsPerOp  float64 `json:"publish_ns_per_op"`
	SnapshotNsPerOp float64 `json:"snapshot_ns_per_op"`
}

// refreshMicroBench exercises origin.WeightService directly, persistence
// included, mirroring BenchmarkWeightRefresh.
func refreshMicroBench() (refreshBench, error) {
	dir, err := os.MkdirTemp("", "sensei-refresh-bench-")
	if err != nil {
		return refreshBench{}, err
	}
	defer os.RemoveAll(dir)
	full, err := video.ByName("Soccer1")
	if err != nil {
		return refreshBench{}, err
	}
	v, err := full.Excerpt(0, 8)
	if err != nil {
		return refreshBench{}, err
	}
	svc := origin.NewWeightService(dir, func(vv *video.Video) ([]float64, error) {
		return vv.TrueSensitivity(), nil
	}, nil)
	if _, err := svc.Get(v); err != nil {
		return refreshBench{}, err
	}
	w := v.TrueSensitivity()

	const publishes = 200
	start := time.Now()
	for i := 0; i < publishes; i++ {
		if _, err := svc.Publish(v, w); err != nil {
			return refreshBench{}, err
		}
	}
	out := refreshBench{
		PublishNsPerOp: float64(time.Since(start).Nanoseconds()) / publishes,
	}

	const snapshots = 200000
	start = time.Now()
	for i := 0; i < snapshots; i++ {
		if _, err := svc.Get(v); err != nil {
			return refreshBench{}, err
		}
	}
	out.SnapshotNsPerOp = float64(time.Since(start).Nanoseconds()) / snapshots
	return out, nil
}

// ingestBench measures the feedback plane's rating hot path: one shard
// lock, a window fold and a gate check per call (internal/ingest), with the
// gate pinned shut so no campaign runs.
type ingestBench struct {
	RatingsPerSec float64 `json:"ratings_per_sec"`
}

// benchEpoch1 is the constant weight plane the ingest bench runs against.
type benchEpoch1 struct{}

func (benchEpoch1) EpochOf(string) uint64 { return 1 }
func (benchEpoch1) RefreshWindow(string, int, int) (uint64, error) {
	return 0, fmt.Errorf("bench: gate must never pass")
}

// ingestMicroBench mirrors BenchmarkIngest.
func ingestMicroBench() (ingestBench, error) {
	full, err := video.ByName("Soccer1")
	if err != nil {
		return ingestBench{}, err
	}
	v, err := full.Excerpt(0, 8)
	if err != nil {
		return ingestBench{}, err
	}
	plane, err := ingest.New(ingest.Config{MinWeightDelta: 1e9}, benchEpoch1{}, nil)
	if err != nil {
		return ingestBench{}, err
	}
	defer plane.Close()
	const ratings = 200000
	start := time.Now()
	for i := 0; i < ratings; i++ {
		if _, err := plane.Ingest(v, i%v.NumChunks(), 1, 1+i%5); err != nil {
			return ingestBench{}, err
		}
	}
	return ingestBench{RatingsPerSec: ratings / time.Since(start).Seconds()}, nil
}

// qlogBench prices the event plane. AppendNs is the cost of one hot-path
// emit — a ring push plus the registry bump — measured in a tight loop with
// the ring drained every lap so every push takes the success path.
// EventsSegmentsPerSec re-measures the origin segment path with the event
// plane on (per-segment ring mirror + three registry observations), and
// OverheadPct is the relative cost of that presence versus the plain
// harness — the "observability never blocks the hot path" contract,
// measured the same warmed paired-block best-of way as the chaos-idle
// comparison and clamped at 0.
type qlogBench struct {
	AppendNs             float64 `json:"append_ns"`
	EventsSegmentsPerSec float64 `json:"events_segments_per_sec"`
	OverheadPct          float64 `json:"overhead_pct"`
}

// qlogMicroBench measures the emit hot path and the end-to-end serving tax.
func qlogMicroBench() (qlogBench, error) {
	// Emit micro-bench: push through the ring in full-capacity laps,
	// draining between laps so no push ever takes the drop path. The drain
	// is outside the timed region.
	ring := qlog.NewRing(qlog.DefaultRingCapacity)
	metrics := &qlog.Metrics{}
	ev := qlog.Event{Kind: qlog.KindChunkDone, Chunk: 3, Rung: 2, Bytes: 1 << 20}
	const laps = 512
	var buf []qlog.Event
	var emitNs time.Duration
	for lap := 0; lap < laps; lap++ {
		start := time.Now()
		for i := 0; i < qlog.DefaultRingCapacity; i++ {
			qlog.Emit(ring, metrics, ev)
		}
		emitNs += time.Since(start)
		buf = ring.Drain(buf[:0])
	}
	out := qlogBench{
		AppendNs: float64(emitNs.Nanoseconds()) / float64(laps*qlog.DefaultRingCapacity),
	}
	if ring.Drops() != 0 {
		return out, fmt.Errorf("qlog bench: %d drops on a drained ring", ring.Drops())
	}

	// Serving tax: warmed paired blocks on a plain and an events-on origin,
	// best of each side (see originMicroBench for why paired-best).
	const (
		warmup = 40
		block  = 100
		rounds = 3
	)
	plain, err := origin.NewSegmentBenchHarnessWithChaos(nil)
	if err != nil {
		return out, err
	}
	defer plain.Close()
	events, err := origin.NewSegmentBenchHarnessWithEvents()
	if err != nil {
		return out, err
	}
	defer events.Close()
	measure := func(h *origin.SegmentBenchHarness, n int) (float64, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := h.Fetch(); err != nil {
				return 0, err
			}
		}
		return float64(n) / time.Since(start).Seconds(), nil
	}
	if _, err := measure(plain, warmup); err != nil {
		return out, err
	}
	if _, err := measure(events, warmup); err != nil {
		return out, err
	}
	var bestPlain, bestEvents float64
	for r := 0; r < rounds; r++ {
		p, err := measure(plain, block)
		if err != nil {
			return out, err
		}
		e, err := measure(events, block)
		if err != nil {
			return out, err
		}
		bestPlain = max(bestPlain, p)
		bestEvents = max(bestEvents, e)
	}
	out.EventsSegmentsPerSec = bestEvents
	out.OverheadPct = (bestPlain - bestEvents) / bestPlain * 100
	if out.OverheadPct < 0 {
		out.OverheadPct = 0
	}
	return out, nil
}

// fleetBench summarizes one end-to-end fleet run (internal/fleet): a
// 16-session mixed-ABR fleet over 4 videos with shaping effectively
// disabled, so sessions/sec tracks harness + client + origin overhead
// rather than trace replay. Mirrors BenchmarkFleet.
type fleetBench struct {
	Sessions       int     `json:"sessions"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	SegmentsPerSec float64 `json:"segments_per_sec"`
	Reconciled     bool    `json:"reconciled"`
	// VclockSessionsPerSec runs the same-sized fleet on the discrete-event
	// virtual clock, paced at timescale 1 over a realistic trace — a
	// workload the wall clock would have to serve in real stream time —
	// and reports sessions completed per wall second. VclockSpeedup is
	// simulated seconds per wall second for that run.
	VclockSessionsPerSec float64 `json:"vclock_sessions_per_sec"`
	VclockSpeedup        float64 `json:"vclock_speedup"`
}

// fleetMicroBench runs the fleet harness once and reports its throughput.
func fleetMicroBench() (fleetBench, error) {
	catalog := make([]*video.Video, 0, 4)
	for _, name := range []string{"Soccer1", "Tank", "Mountain", "Lava"} {
		full, err := video.ByName(name)
		if err != nil {
			return fleetBench{}, err
		}
		v, err := full.Excerpt(0, 4)
		if err != nil {
			return fleetBench{}, err
		}
		catalog = append(catalog, v)
	}
	report, err := fleet.Run(context.Background(), fleet.Config{
		Sessions:   16,
		Videos:     catalog,
		Traces:     map[string]*trace.Trace{"wire": {Name: "wire", BitsPerSecond: []float64{1e9}}},
		TimeScales: []float64{0.001},
	})
	if err != nil {
		return fleetBench{}, err
	}
	if report.Failed > 0 || !report.Reconciliation.Ok {
		return fleetBench{}, fmt.Errorf("fleet bench did not reconcile:\n%s", report.Render())
	}
	// The virtual-clock arm: real-time pacing (timescale 1) on a flat
	// 32 Mbps trace, which the wall clock would serve in stream time; on
	// the virtual clock the run is CPU-bound, so sessions/sec measures the
	// discrete-event engine, not the trace.
	vreport, err := fleet.Run(context.Background(), fleet.Config{
		Sessions:   16,
		Videos:     catalog,
		Traces:     map[string]*trace.Trace{"flat": {Name: "flat", BitsPerSecond: []float64{3.2e7}}},
		TimeScales: []float64{1},
		Clock:      vclock.NewVirtual(),
	})
	if err != nil {
		return fleetBench{}, err
	}
	if vreport.Failed > 0 || !vreport.Reconciliation.Ok {
		return fleetBench{}, fmt.Errorf("vclock fleet bench did not reconcile:\n%s", vreport.Render())
	}
	return fleetBench{
		Sessions:             report.Sessions,
		SessionsPerSec:       report.SessionsPerSec,
		SegmentsPerSec:       float64(report.SegmentsDownloaded) / report.ElapsedSec,
		Reconciled:           report.Reconciliation.Ok,
		VclockSessionsPerSec: vreport.SessionsPerSec,
		VclockSpeedup:        vreport.Speedup,
	}, nil
}

// checkAgainstBaseline compares a fresh report to the committed baseline
// within a tolerance factor and returns the list of regressions. Baseline
// fields that are zero (absent in an older file) are skipped.
func checkAgainstBaseline(cur, base benchReport, tol float64) []string {
	var regressions []string
	// Throughput-shaped metrics must not drop below baseline/tol.
	higher := func(name string, got, want float64) {
		if want > 0 && got < want/tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f vs baseline %.1f (floor %.1f at %.1fx tolerance)", name, got, want, want/tol, tol))
		}
	}
	// Latency-shaped metrics must not exceed baseline*tol.
	lower := func(name string, got, want float64) {
		if want > 0 && got > want*tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f vs baseline %.1f (ceiling %.1f at %.1fx tolerance)", name, got, want, want*tol, tol))
		}
	}
	higher("planner speedup", cur.Planner.Speedup, base.Planner.Speedup)
	higher("origin segments/s", cur.Origin.SegmentsPerSec, base.Origin.SegmentsPerSec)
	higher("origin parallel segments/s", cur.Origin.SegmentsPerSecParallel, base.Origin.SegmentsPerSecParallel)
	higher("origin chaos-idle segments/s", cur.Origin.ChaosIdleSegmentsPerSec, base.Origin.ChaosIdleSegmentsPerSec)
	higher("router segments/s", cur.Router.SegmentsPerSec, base.Router.SegmentsPerSec)
	higher("fleet sessions/s", cur.Fleet.SessionsPerSec, base.Fleet.SessionsPerSec)
	higher("fleet vclock sessions/s", cur.Fleet.VclockSessionsPerSec, base.Fleet.VclockSessionsPerSec)
	higher("ingest ratings/s", cur.Ingest.RatingsPerSec, base.Ingest.RatingsPerSec)
	higher("qlog events-on segments/s", cur.Qlog.EventsSegmentsPerSec, base.Qlog.EventsSegmentsPerSec)
	lower("refresh publish ns/op", cur.Refresh.PublishNsPerOp, base.Refresh.PublishNsPerOp)
	lower("refresh snapshot ns/op", cur.Refresh.SnapshotNsPerOp, base.Refresh.SnapshotNsPerOp)
	lower("qlog append ns/op", cur.Qlog.AppendNs, base.Qlog.AppendNs)
	// The event plane's serving tax is gated absolutely, not against the
	// baseline: the contract is "observability never blocks the hot path",
	// and a ≤5% paired-best overhead is that contract's number.
	if cur.Qlog.OverheadPct > 5 {
		regressions = append(regressions,
			fmt.Sprintf("qlog overhead: %.1f%% vs the 5%% absolute ceiling", cur.Qlog.OverheadPct))
	}
	// The experiment wall-clock is only comparable when this run covered
	// the same experiments at the same mode as the baseline: a subset run
	// would trivially pass (masking a slowdown), a -mode full run against
	// a quick baseline would spuriously fail.
	if cur.Mode == base.Mode && slices.Equal(cur.ExperimentList, base.ExperimentList) {
		lower("experiments total sec", cur.TotalSec, base.TotalSec)
	}
	return regressions
}

func main() {
	mode := flag.String("mode", "quick", "experiment scale: quick or full")
	benchJSON := flag.String("benchjson", "", "write a JSON perf baseline to this file")
	check := flag.Bool("check", false, "compare this run against -baseline and exit non-zero on regression")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline for -check")
	checkTol := flag.Float64("checktol", 4, "regression tolerance factor for -check")
	flag.Parse()

	var labMode experiments.Mode
	switch *mode {
	case "quick":
		labMode = experiments.Quick
	case "full":
		labMode = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "senseibench: unknown mode %q (want quick or full)\n", *mode)
		os.Exit(2)
	}
	lab := experiments.NewLab(labMode)

	runners := map[string]func() (renderer, error){
		"table1":    func() (renderer, error) { return lab.Table1(), nil },
		"fig1":      func() (renderer, error) { return lab.Fig1() },
		"fig2":      func() (renderer, error) { return lab.Fig2() },
		"fig3":      func() (renderer, error) { return lab.Fig3() },
		"fig4":      func() (renderer, error) { return lab.Fig4() },
		"fig5":      func() (renderer, error) { return lab.Fig5() },
		"fig6":      func() (renderer, error) { return lab.Fig6() },
		"fig12a":    func() (renderer, error) { return lab.Fig12a() },
		"fig12b":    func() (renderer, error) { return lab.Fig12b() },
		"fig12c":    func() (renderer, error) { return lab.Fig12c() },
		"fig13":     func() (renderer, error) { return lab.Fig13() },
		"fig14":     func() (renderer, error) { return lab.Fig14() },
		"fig15":     func() (renderer, error) { return lab.Fig15() },
		"fig16":     func() (renderer, error) { return lab.Fig16() },
		"fig17":     func() (renderer, error) { return lab.Fig17() },
		"fig18":     func() (renderer, error) { return lab.Fig18() },
		"fig20":     func() (renderer, error) { return lab.Fig20() },
		"sanity":    func() (renderer, error) { return lab.Sanity() },
		"appendixb": func() (renderer, error) { return lab.AppendixB() },
	}
	order := []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig12a", "fig12b", "fig12c", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig20", "sanity", "appendixb",
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = order
	}
	report := benchReport{
		Mode:          *mode,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ExperimentSec: map[string]float64{},
	}
	total := time.Now()
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "senseibench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", id, elapsed)
		report.ExperimentSec[id] = elapsed
		report.ExperimentList = append(report.ExperimentList, id)
	}
	report.TotalSec = time.Since(total).Seconds()

	if *benchJSON != "" || *check {
		report.Planner = plannerMicroBench()
		ob, err := originMicroBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: origin bench: %v\n", err)
			os.Exit(1)
		}
		report.Origin = ob
		rtb, err := routerMicroBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: router bench: %v\n", err)
			os.Exit(1)
		}
		report.Router = rtb
		fb, err := fleetMicroBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: fleet bench: %v\n", err)
			os.Exit(1)
		}
		report.Fleet = fb
		rb, err := refreshMicroBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: refresh bench: %v\n", err)
			os.Exit(1)
		}
		report.Refresh = rb
		ib, err := ingestMicroBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: ingest bench: %v\n", err)
			os.Exit(1)
		}
		report.Ingest = ib
		qb, err := qlogMicroBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: qlog bench: %v\n", err)
			os.Exit(1)
		}
		report.Qlog = qb
		fmt.Printf("[perf: planner %.0fx, origin %.0f seg/s serial / %.0f parallel (chaos-idle %.0f, %+.1f%%), router×%d %.0f seg/s, fleet %.0f sess/s (vclock %.0f, %.0fx real time), refresh publish %.0fµs / snapshot %.0fns, ingest %.0f ratings/s, qlog emit %.0fns (events-on %.0f seg/s, %+.1f%%), total %.1fs]\n",
			report.Planner.Speedup, report.Origin.SegmentsPerSec, report.Origin.SegmentsPerSecParallel,
			report.Origin.ChaosIdleSegmentsPerSec, report.Origin.ChaosIdleOverheadPct,
			report.Router.Shards, report.Router.SegmentsPerSec,
			report.Fleet.SessionsPerSec, report.Fleet.VclockSessionsPerSec, report.Fleet.VclockSpeedup,
			report.Refresh.PublishNsPerOp/1e3, report.Refresh.SnapshotNsPerOp, report.Ingest.RatingsPerSec,
			report.Qlog.AppendNs, report.Qlog.EventsSegmentsPerSec, report.Qlog.OverheadPct, report.TotalSec)
	}
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: writing %s: %v\n", *benchJSON, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: closing %s: %v\n", *benchJSON, err)
			os.Exit(1)
		}
		fmt.Printf("[perf baseline written to %s]\n", *benchJSON)
	}
	if *check {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: reading baseline: %v\n", err)
			os.Exit(1)
		}
		var base benchReport
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "senseibench: decoding %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		if regressions := checkAgainstBaseline(report, base, *checkTol); len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "senseibench: PERF REGRESSION vs %s:\n", *baselinePath)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  - %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("[perf check passed against %s at %.1fx tolerance]\n", *baselinePath, *checkTol)
	}
}
