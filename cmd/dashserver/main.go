// Command dashserver runs the multi-tenant DASH origin (§6 scaled up):
// one process serves the whole catalog with SENSEI-extended manifests,
// per-session trace-shaped egress and a session control plane. Pair it
// with one or more dashclient instances.
//
// Sensitivity weights are profiled lazily — at most once per video, on the
// first manifest request — and persisted under -weightdir so a restarted
// origin starts instantly. They are a live, versioned plane: every profile
// carries an epoch (persisted, survives restarts), segment responses
// advertise the current epoch via X-Sensei-Weight-Epoch, clients re-fetch
// GET /weights?sid=... when it advances, and POST /refresh re-profiles a
// chunk window and publishes the result as the next epoch — active
// sessions pick it up within one segment, mid-stream:
//
//	curl -X POST localhost:8428/refresh -d '{"video":"Soccer1","from":10,"to":16}'
//
// With -autopilot the loop closes without the operator: clients post
// per-chunk ratings to POST /rating (session id, chunk, weight epoch, 1–5
// score), a sharded aggregator accumulates the evidence per chunk window,
// and once a confidence gate passes (-ap-samples ratings in a window,
// -ap-interval since the video's last refresh, implied weight change past
// -ap-delta) the origin re-profiles that window and publishes the next
// epoch on its own. Stale-epoch ratings are counted but quarantined.
//
// Usage:
//
//	dashserver [-addr 127.0.0.1:8428] [-shards 1] [-videos all|Name1,Name2]
//	           [-excerpt N] [-timescale 0.01] [-vclock] [-profile] [-pop 20000]
//	           [-weightdir weights] [-idle 2m] [-autopilot] [-ap-window 4]
//	           [-ap-samples 32] [-ap-interval 30s] [-ap-delta 0.25]
//	           [-chaos-rate 0] [-chaos-seed N] [-chaos-max-consecutive 2]
//	           [-events] [-pprof addr]
//
// -shards N > 1 fronts N origin shards behind the one listener with a
// consistent-hash router: sessions are sticky (every request of a session
// lands on the shard that owns its ID), the sensitivity plane is shared
// (POST /refresh bumps every shard's epoch at once), and GET /stats merges
// the per-shard ledgers exactly, reporting them under "shards". The client
// protocol is unchanged. -autopilot requires a single origin (the feedback
// autopilot is not shard-aware).
//
// -pprof serves net/http/pprof on a side listener for live profiling of
// the serving hot path.
//
// -events turns on the qlog-style session event plane: every session owns
// a bounded lock-free trace ring (drop-on-full with exact accounting —
// observability never blocks the hot path), GET /events?sid=...&since=...
// drains a session's typed events incrementally as JSON lines (no sid
// drains the origin's process-level ring; under -shards the router fans
// the drain out across every shard), and GET /metrics exposes the
// aggregate registry in Prometheus text — served lock-free from padded
// atomics, shared across all shards.
//
// -vclock serves on a discrete-event virtual clock: every throttle sleep
// jumps straight to its deadline the moment all in-flight requests are
// asleep, so shaped egress runs at CPU speed instead of trace speed.
// In-flight HTTP requests are the clock's only registered participants
// (origin.Config.ExternalClients), which means simulated time advances
// only while at least one request is being served — keep the origin under
// steady load, or pair it with a -vclock-aware harness, for the speedup
// to materialize. The shutdown stats gain a scale banner (sessions,
// simulated seconds, wall seconds, speedup).
//
// -chaos-rate > 0 mounts seeded, replayable fault injection in front of the
// data and control planes (never /stats or /refresh): 5xx errors,
// connection resets, response stalls and truncated segment bodies, capped
// at -chaos-max-consecutive faults in a row per (session, endpoint) stream.
// Resilient clients (dashclient, the fleet harness) absorb the weather with
// bounded retry budgets; /stats gains an injector ledger to reconcile
// against.
//
// Endpoints: POST /session, GET /v/<video>/manifest.mpd,
// GET /v/<video>/segment/<chunk>/<rung>?sid=..., GET /weights?sid=...,
// POST /refresh, POST /rating (with -autopilot), DELETE /session/<id>,
// GET /stats.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"sensei"
)

// offeredTraces builds the named trace menu sessions choose from: the
// 10-trace §7 evaluation set plus two easy-to-type defaults.
func offeredTraces() (map[string]*sensei.Trace, string) {
	traces := map[string]*sensei.Trace{}
	for _, tr := range sensei.EvaluationTraces() {
		traces[tr.Name] = tr
	}
	traces["fcc-2.5"] = sensei.GenerateTrace(sensei.TraceSpec{
		Name: "fcc-2.5", Kind: sensei.TraceFCC, MeanBps: 2.5e6, Seconds: 1800, Seed: 0xd1,
	})
	traces["hsdpa-1.2"] = sensei.GenerateTrace(sensei.TraceSpec{
		Name: "hsdpa-1.2", Kind: sensei.TraceHSDPA, MeanBps: 1.2e6, Seconds: 1800, Seed: 0xd2,
	})
	return traces, "fcc-2.5"
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8428", "listen address")
	shards := flag.Int("shards", 1, "front N origin shards behind the listener with consistent-hash sticky sessions (1 = single origin)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (\"\" = off)")
	videos := flag.String("videos", "all", `catalog: "all" or comma-separated Table 1 names`)
	excerpt := flag.Int("excerpt", 0, "serve only the first N chunks of each video (0 = full)")
	timescale := flag.Float64("timescale", 0.01, "default session wall-clock compression (0.01 = 100x faster)")
	vclockOn := flag.Bool("vclock", false, "serve on a discrete-event virtual clock: shaped egress jumps to the next deadline whenever every in-flight request is asleep (CPU-bound, not trace-bound)")
	profile := flag.Bool("profile", true, "profile videos lazily and embed weights in manifests")
	popSize := flag.Int("pop", 20000, "rater population size for profiling")
	weightDir := flag.String("weightdir", "weights", "directory persisting profiled weights (\"\" = memory only)")
	idle := flag.Duration("idle", 2*time.Minute, "idle session expiry")
	autopilot := flag.Bool("autopilot", false, "close the feedback loop: accept POST /rating and refresh chunk windows autonomously (requires -profile)")
	apWindow := flag.Int("ap-window", 0, "autopilot chunk-window size (0 = default)")
	apSamples := flag.Int("ap-samples", 0, "autopilot min ratings per window before a refresh (0 = default)")
	apInterval := flag.Duration("ap-interval", 0, "autopilot min spacing between refreshes of one video (0 = default)")
	apDelta := flag.Float64("ap-delta", 0, "autopilot hysteresis: min implied weight change (0 = default)")
	chaosRate := flag.Float64("chaos-rate", 0, "fault-inject this fraction of requests per endpoint kind (0 = chaos off): 5xx, connection resets, stalls, truncated segment bodies")
	chaosSeed := flag.Uint64("chaos-seed", 0xc4a05, "fault-policy seed; the same seed replays the same fault schedule")
	chaosStreak := flag.Int("chaos-max-consecutive", 0, "cap on consecutive faults per (session, endpoint) stream (0 = default 2); keep it below client retry budgets")
	eventsOn := flag.Bool("events", false, "enable the session event plane: per-session qlog trace rings, GET /events?sid=... incremental drains and a Prometheus-text GET /metrics")
	flag.Parse()

	var catalog []*sensei.Video
	if *videos == "all" {
		catalog = sensei.VideoCatalog()
	} else {
		for _, name := range strings.Split(*videos, ",") {
			v, err := sensei.VideoByName(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			catalog = append(catalog, v)
		}
	}
	if *excerpt > 0 {
		for i, v := range catalog {
			n := *excerpt
			if n > v.NumChunks() {
				n = v.NumChunks()
			}
			clip, err := v.Excerpt(0, n)
			if err != nil {
				fail(err)
			}
			catalog[i] = clip
		}
	}

	var profileFn sensei.DASHProfileFunc
	if *profile {
		pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: *popSize, Seed: 0x717})
		if err != nil {
			fail(err)
		}
		profiler := sensei.NewProfiler(pop)
		profileFn = func(v *sensei.Video) ([]float64, error) {
			start := time.Now()
			fmt.Printf("profiling %s (%d chunks)...\n", v.Name, v.NumChunks())
			p, err := profiler.Profile(v)
			if err != nil {
				return nil, err
			}
			fmt.Printf("profiled %s in %.1fs: $%.1f/min, %d participants\n",
				v.Name, time.Since(start).Seconds(), p.CostPerMinuteUSD, p.Participants)
			return p.Weights, nil
		}
	}

	var ingestCfg *sensei.IngestConfig
	if *autopilot {
		if profileFn == nil {
			fail(fmt.Errorf("-autopilot requires -profile (autonomous refreshes re-profile chunk windows)"))
		}
		ingestCfg = &sensei.IngestConfig{
			WindowChunks:   *apWindow,
			MinSamples:     *apSamples,
			MinInterval:    *apInterval,
			MinWeightDelta: *apDelta,
		}
	}

	var chaosCfg *sensei.ChaosConfig
	if *chaosRate > 0 {
		p := sensei.UniformChaos(*chaosSeed, *chaosRate)
		p.MaxConsecutive = *chaosStreak
		chaosCfg = &p
	}

	if *pprofAddr != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dashserver: pprof:", err)
			}
		}()
		fmt.Printf("pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}

	traces, defaultTrace := offeredTraces()
	ocfg := sensei.DASHOriginConfig{
		Catalog:            catalog,
		Profile:            profileFn,
		WeightDir:          *weightDir,
		Traces:             traces,
		DefaultTrace:       defaultTrace,
		TimeScale:          *timescale,
		SessionIdleTimeout: *idle,
		Ingest:             ingestCfg,
		Chaos:              chaosCfg,
		Logf:               log.Printf,
	}
	if *eventsOn {
		ocfg.Events = &sensei.DASHEventsConfig{}
	}
	var clk sensei.Clock
	if *vclockOn {
		// In-flight requests are the virtual clock's registered units:
		// ExternalClients brackets each request with Enter/Exit, so time
		// advances whenever every request being served is parked in a
		// throttle sleep.
		clk = sensei.NewVirtualClock()
		ocfg.Clock = clk
		ocfg.ExternalClients = true
	}
	// The serving plane: a single origin, or -shards origins behind a
	// consistent-hash router. Both expose the same endpoints; the branches
	// only differ in construction and where the final stats come from.
	var (
		srv interface {
			Start(addr string) (string, error)
			Shutdown(ctx context.Context) error
		}
		finalStats func() any
		sessions   func() int64
	)
	if *shards > 1 {
		rt, err := sensei.NewDASHRouter(sensei.DASHRouterConfig{Shards: *shards, Origin: ocfg})
		if err != nil {
			fail(err)
		}
		srv = sensei.NewDASHRouterServer(rt)
		finalStats = func() any { return rt.Stats() }
		sessions = rt.SessionsCreated
	} else {
		o, err := sensei.NewDASHOrigin(ocfg)
		if err != nil {
			fail(err)
		}
		srv = sensei.NewDASHServer(o)
		finalStats = func() any { return o.Stats() }
		sessions = o.SessionsCreated
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fail(err)
	}
	startWall := time.Now()
	var startClock time.Duration
	if clk != nil {
		startClock = clk.Now()
	}
	fmt.Printf("origin at http://%s serving %d videos (timescale %.3f, default trace %s)\n",
		bound, len(catalog), *timescale, defaultTrace)
	if clk != nil {
		fmt.Println("vclock: shaped egress on a discrete-event virtual clock; time advances whenever every in-flight request is asleep")
	}
	if *shards > 1 {
		fmt.Printf("scale-out: %d origin shards behind a consistent-hash router; sessions are sticky, /stats merges the shard ledgers\n", *shards)
	}
	names := make([]string, 0, len(traces))
	for name := range traces {
		names = append(names, name)
	}
	fmt.Printf("traces on offer: %s\n", strings.Join(names, ", "))
	fmt.Println("join: POST /session {\"video\":..., \"trace\":...}; stats: GET /stats")
	if *profile {
		fmt.Println("live refresh: POST /refresh {\"video\":..., \"from\":..., \"to\":...} re-profiles a chunk window and bumps the weight epoch mid-stream")
	}
	if *autopilot {
		fmt.Println("closed loop: POST /rating {\"session_id\":..., \"chunk\":..., \"epoch\":..., \"rating\":1-5} feeds the autopilot; accumulated evidence refreshes chunk windows autonomously")
	}
	if chaosCfg != nil {
		fmt.Printf("chaos: faulting %.0f%% of requests per endpoint (seed %#x); /stats and /refresh are never faulted\n",
			*chaosRate*100, *chaosSeed)
	}
	if *eventsOn {
		fmt.Println("events: per-session trace rings on; drain GET /events?sid=...&since=..., scrape GET /metrics")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("draining sessions...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dashserver: shutdown:", err)
	}
	out, _ := json.MarshalIndent(finalStats(), "", "  ")
	fmt.Printf("final stats:\n%s\n", out)
	if clk != nil {
		wall := time.Since(startWall).Seconds()
		simulated := (clk.Now() - startClock).Seconds()
		speedup := 0.0
		if wall > 0 {
			speedup = simulated / wall
		}
		fmt.Printf("vclock: %d sessions spanned %.1f simulated s in %.1f wall s (%.1fx real time)\n",
			sessions(), simulated, wall, speedup)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dashserver:", err)
	os.Exit(1)
}
