// Command dashserver serves a catalog video over HTTP with trace-shaped
// egress and a SENSEI-extended DASH manifest (§6). Pair it with dashclient.
//
// Usage:
//
//	dashserver [-addr 127.0.0.1:8428] [-video Soccer1] [-mbps 2.5]
//	           [-timescale 0.01] [-profile] [-pop 20000]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"sensei"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8428", "listen address")
	name := flag.String("video", "Soccer1", "catalog video name")
	mbps := flag.Float64("mbps", 2.5, "mean bottleneck throughput in Mbps")
	timescale := flag.Float64("timescale", 0.01, "wall-clock compression (0.01 = 100x faster)")
	profile := flag.Bool("profile", true, "profile the video and embed weights in the manifest")
	popSize := flag.Int("pop", 20000, "rater population size for profiling")
	flag.Parse()

	v, err := sensei.VideoByName(*name)
	if err != nil {
		fail(err)
	}
	var weights []float64
	if *profile {
		pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: *popSize, Seed: 0x717})
		if err != nil {
			fail(err)
		}
		fmt.Printf("profiling %s (%d chunks)...\n", v.Name, v.NumChunks())
		p, err := sensei.NewProfiler(pop).Profile(v)
		if err != nil {
			fail(err)
		}
		weights = p.Weights
		fmt.Printf("profiled: $%.1f/min, %d participants\n", p.CostPerMinuteUSD, p.Participants)
	}

	tr := sensei.GenerateTrace(sensei.TraceSpec{
		Name: "bottleneck", Kind: sensei.TraceHSDPA, MeanBps: *mbps * 1e6, Seconds: 1800, Seed: 0xd1,
	})
	shaper, err := sensei.NewDASHShaper(tr, *timescale)
	if err != nil {
		fail(err)
	}
	srv, err := sensei.NewDASHServer(v, weights, shaper)
	if err != nil {
		fail(err)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving %s at http://%s (manifest: /manifest.mpd, segments: /segment/<chunk>/<rung>)\n", v.Name, bound)
	fmt.Printf("bottleneck: %.1f Mbps mean, timescale %.3f\n", *mbps, *timescale)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("shutting down")
	_ = srv.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dashserver:", err)
	os.Exit(1)
}
