// Command profiler runs SENSEI's crowdsourced QoE-profiling pipeline (§4)
// on one catalog video and prints the inferred per-chunk sensitivity
// weights together with the campaign's cost and delay accounting.
//
// Usage:
//
//	profiler [-video Soccer1] [-raters 10] [-full] [-pop 30000] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sensei"
)

func main() {
	name := flag.String("video", "Soccer1", "catalog video name (Table 1)")
	raters := flag.Int("raters", 0, "override step-one raters per rendering (M1)")
	full := flag.Bool("full", false, "run the unpruned full-enumeration strawman too")
	popSize := flag.Int("pop", 30000, "rater population size")
	seed := flag.Uint64("seed", 0x717, "population seed")
	flag.Parse()

	v, err := sensei.VideoByName(*name)
	if err != nil {
		fail(err)
	}
	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: *popSize, Seed: *seed})
	if err != nil {
		fail(err)
	}
	profiler := sensei.NewProfiler(pop)
	if *raters > 0 {
		profiler.Params.M1 = *raters
	}

	profile, err := profiler.Profile(v)
	if err != nil {
		fail(err)
	}
	printProfile("two-step scheduler (pruned)", profile)

	if *full {
		fullProfile, err := profiler.ProfileFull(v)
		if err != nil {
			fail(err)
		}
		printProfile("full enumeration (no pruning)", fullProfile)
		fmt.Printf("pruning saves %.1f%% of cost\n", 100*(1-profile.CostUSD/fullProfile.CostUSD))
	}
}

func printProfile(label string, p *sensei.Profile) {
	fmt.Printf("== %s: %s ==\n", p.VideoName, label)
	fmt.Printf("cost: $%.1f total ($%.1f per minute of video)\n", p.CostUSD, p.CostPerMinuteUSD)
	fmt.Printf("delay: %.0f minutes, %d participants, %d rated clips, %d rejected raters\n",
		p.DelayMinutes, p.Participants, p.RatedRenderings, p.RejectedRaters)
	if len(p.StepTwoChunks) > 0 {
		fmt.Printf("step-two chunks: %v\n", p.StepTwoChunks)
	}
	fmt.Println("per-chunk sensitivity weights (one bar per 4-second chunk):")
	for i, w := range p.Weights {
		bar := strings.Repeat("#", int(w*20))
		fmt.Printf("  chunk %3d [%3ds] %5.2f %s\n", i, i*4, w, bar)
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "profiler:", err)
	os.Exit(1)
}
