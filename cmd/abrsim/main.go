// Command abrsim compares ABR algorithms on one video over one or more
// throughput traces, printing per-session and aggregate quality. Traces
// can be synthetic or loaded from measurement files (one bits-per-second
// sample per line, or "timestamp bandwidth" pairs).
//
// Usage:
//
//	abrsim [-video Soccer1] [-algs bba,bola,rate,fugu,sensei-fugu]
//	       [-mbps 1.5] [-kind hsdpa] [-traces file1,file2] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sensei"
	"sensei/internal/abr"
	"sensei/internal/crowd"
	"sensei/internal/mos"
	"sensei/internal/player"
	"sensei/internal/stats"
	"sensei/internal/trace"
)

func main() {
	name := flag.String("video", "Soccer1", "catalog video name")
	algNames := flag.String("algs", "bba,bola,rate,fugu,sensei-fugu", "comma-separated algorithms")
	mbps := flag.Float64("mbps", 1.5, "synthetic trace mean throughput (Mbps)")
	kind := flag.String("kind", "hsdpa", "synthetic trace family: fcc or hsdpa")
	traceFiles := flag.String("traces", "", "comma-separated trace files (overrides synthetic)")
	seed := flag.Uint64("seed", 7, "synthetic trace seed")
	popSize := flag.Int("pop", 30000, "rater population size for profiling")
	flag.Parse()

	v, err := sensei.VideoByName(*name)
	if err != nil {
		fail(err)
	}

	// Profile once; only sensitivity-aware algorithms consume the weights.
	pop, err := mos.NewPopulation(mos.PopulationConfig{Size: *popSize, Seed: 0x717})
	if err != nil {
		fail(err)
	}
	profile, err := crowd.NewProfiler(pop).Profile(v)
	if err != nil {
		fail(err)
	}

	traces, err := loadTraces(*traceFiles, *kind, *mbps, *seed)
	if err != nil {
		fail(err)
	}

	type algEntry struct {
		alg     player.Algorithm
		weights []float64
	}
	var algs []algEntry
	for _, a := range strings.Split(*algNames, ",") {
		switch strings.TrimSpace(a) {
		case "bba":
			algs = append(algs, algEntry{abr.NewBBA(), nil})
		case "bola":
			algs = append(algs, algEntry{abr.NewBOLA(), nil})
		case "rate":
			algs = append(algs, algEntry{abr.NewRateRule(), nil})
		case "fugu":
			algs = append(algs, algEntry{abr.NewFugu(), nil})
		case "sensei-fugu":
			algs = append(algs, algEntry{abr.NewSenseiFugu(), profile.Weights})
		default:
			fail(fmt.Errorf("unknown algorithm %q", a))
		}
	}

	fmt.Printf("%-14s %-14s %8s %9s %8s %9s\n", "trace", "algorithm", "trueQoE", "kbps", "rebuf(s)", "switches")
	agg := map[string][]float64{}
	for _, tr := range traces {
		for _, e := range algs {
			res, err := player.Play(v, tr, e.alg, e.weights, player.Config{})
			if err != nil {
				fail(err)
			}
			q := mos.TrueQoE(res.Rendering)
			agg[e.alg.Name()] = append(agg[e.alg.Name()], q)
			fmt.Printf("%-14s %-14s %8.3f %9.0f %8.1f %9d\n",
				tr.Name, e.alg.Name(), q,
				res.Rendering.MeanBitrateKbps(), res.RebufferSec, res.Rendering.SwitchCount())
		}
	}
	fmt.Println()
	fmt.Printf("%-14s %8s %18s\n", "algorithm", "meanQoE", "95% CI")
	for _, e := range algs {
		qs := agg[e.alg.Name()]
		iv := stats.BootstrapMean(qs, 0.95, 1000, stats.NewRNG(1))
		fmt.Printf("%-14s %8.3f   [%.3f, %.3f]\n", e.alg.Name(), iv.Point, iv.Lo, iv.Hi)
	}
}

// loadTraces reads measurement files or synthesizes one trace.
func loadTraces(files, kind string, mbps float64, seed uint64) ([]*trace.Trace, error) {
	if files == "" {
		spec := trace.GenSpec{
			Name: fmt.Sprintf("%s-%.1fM", kind, mbps), Kind: trace.Kind(kind),
			MeanBps: mbps * 1e6, Seconds: 900, Seed: seed,
		}
		// A typo'd family used to silently run as a different one; fail
		// loudly instead.
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return []*trace.Trace{trace.Generate(spec)}, nil
	}
	var out []*trace.Trace
	for _, path := range strings.Split(files, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		tr, err := trace.Read(f, path)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, tr)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "abrsim:", err)
	os.Exit(1)
}
