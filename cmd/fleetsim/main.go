// Command fleetsim drives a concurrent streaming fleet against one
// multi-tenant DASH origin and prints the aggregate report: QoE, rebuffer
// and throughput percentiles, per-ABR and per-trace cohorts, and an exact
// reconciliation of the fleet's client-side byte/segment ledgers against
// the origin's /stats. It exits non-zero when any session fails or the
// ledgers disagree, so it doubles as a CI smoke for the client/simulator
// parity contract under production-scale concurrency.
//
// Usage:
//
//	fleetsim [-sessions 64] [-videos Soccer1,Tank,Mountain,Lava] [-excerpt 8]
//	         [-abrs ratebased,bola,mpc,sensei-mpc] [-traces fast=32,slow=4]
//	         [-timescales 0.05] [-vclock] [-workers 0] [-timeout 0]
//	         [-refresh 0] [-shards 1] [-closedloop] [-chaos]
//	         [-chaos-rate 0.08] [-chaos-seed N] [-noweights] [-json]
//	         [-outcomes] [-events] [-events-dump slot] [-pprof addr] [-v]
//
// -shards N > 1 runs the fleet against a consistent-hash router fronting N
// origin shards instead of a single origin: sessions spread across shards
// by session-ID hash, and reconciliation additionally proves the merged
// /stats equals the sum of the per-shard ledgers with no shard leaking a
// session — the scale-out smoke. Incompatible with -closedloop (the ingest
// autopilot is not shard-aware). -pprof serves net/http/pprof on a side
// listener for profiling the harness under load.
//
// -traces lists flat traces as name=Mbps pairs; -timescales is the
// wall-clock compression mix. Sessions walk the full video×trace×abr×
// timescale cross product with a coprime stride, so every combination is
// covered and cohorts are never confounded with each other.
// -vclock runs the whole fleet on a discrete-event virtual clock: every
// throttle, backoff and buffer wait jumps straight to its deadline the
// moment all sessions are asleep, so sessions/sec is bounded by CPU rather
// than by stream time — with ledgers still reconciled exactly. The report
// gains a scale banner (simulated seconds vs wall seconds and the speedup
// factor). Use -timescales 1 with -vclock to simulate real-time pacing;
// compressing time further is free but no longer necessary.
// -workers bounds concurrently running sessions (0 = whole fleet at once).
// -timeout bounds the whole run (0 = none). -refresh schedules a mid-run
// catalog-wide sensitivity refresh (live-plane scenario): the report gains
// per-epoch QoE cohorts and reconciliation fails unless every session
// still streaming converged on the new epoch. -closedloop runs the
// feedback-ingestion scenario instead: every session carries a mos-backed
// rater persona posting one score per rendered chunk, the origin's
// autopilot turns the evidence into autonomous epoch bumps (no operator
// refresh), and the report gains an ingest ledger reconciled exactly
// against /stats. -chaos mounts seeded fault injection on every origin
// endpoint (5xx, connection resets, stalls, truncated segment bodies) and
// turns every client resilient; the report gains a two-sided fault ledger
// and the run fails unless every session survives and the ledgers
// reconcile per endpoint kind — the whole fault schedule replays from
// -chaos-seed. -events runs the fleet with per-session qlog trace rings:
// the report gains an event-plane ledger and reconciliation additionally
// cross-checks every session's event tallies against its own ledgers and
// the origin's /stats — a third independently produced account of the run,
// voided by any ring drop. -events-dump N prints fleet slot N's full
// ordered trace as JSON lines on stderr after the report (implies -events).
// -json emits the report as JSON (with per-session rows under -outcomes)
// instead of text.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"sensei"
	"sensei/internal/fleet"
	"sensei/internal/trace"
)

func main() {
	sessions := flag.Int("sessions", 64, "fleet size")
	videos := flag.String("videos", "Soccer1,Tank,Mountain,Lava", "comma-separated catalog video names")
	excerpt := flag.Int("excerpt", 8, "stream only the first N chunks of each video (0 = full)")
	abrs := flag.String("abrs", "ratebased,bola,mpc,sensei-mpc", "comma-separated ABR mix")
	traces := flag.String("traces", "fast=32,slow=4", "comma-separated name=Mbps flat traces")
	timescales := flag.String("timescales", "0.05", "comma-separated wall-clock compression mix")
	vclockOn := flag.Bool("vclock", false, "run on a discrete-event virtual clock: simulated time jumps to the next deadline whenever the whole fleet is asleep, so the run is CPU-bound instead of stream-time-bound")
	workers := flag.Int("workers", 0, "max concurrently running sessions (0 = all)")
	timeout := flag.Duration("timeout", 0, "bound the whole run (0 = none)")
	refresh := flag.Duration("refresh", 0, "publish a catalog-wide weight refresh this long after every session joined (0 = none); the run fails unless every session converges on the new epoch")
	shards := flag.Int("shards", 1, "run against N origin shards behind a consistent-hash router (1 = single origin); reconciliation then also proves the merged /stats equals the shard-ledger sums")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (\"\" = off)")
	closedLoop := flag.Bool("closedloop", false, "attach rater cohorts and enable the origin's ingest autopilot (autonomous epoch bumps from live ratings)")
	chaosOn := flag.Bool("chaos", false, "mount seeded fault injection on the origin and run resilient clients; the run fails unless every session survives and the fault ledgers reconcile per endpoint kind")
	chaosRate := flag.Float64("chaos-rate", fleet.DefaultChaosRate, "uniform per-request fault probability per endpoint kind (with -chaos)")
	chaosSeed := flag.Uint64("chaos-seed", fleet.DefaultChaosSeed, "fault-policy seed; the whole fault schedule replays from it (with -chaos)")
	noWeights := flag.Bool("noweights", false, "serve weightless manifests (skip sensitivity profiling)")
	eventsOn := flag.Bool("events", false, "trace every session into a qlog event ring; the report gains an event-plane ledger and reconciliation cross-checks event tallies against the session and origin ledgers")
	eventsDump := flag.Int("events-dump", -1, "print fleet slot N's full ordered event trace as JSON lines on stderr after the report (implies -events; -1 = off)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	outcomes := flag.Bool("outcomes", false, "include per-session rows in the JSON report")
	verbose := flag.Bool("v", false, "log origin activity to stderr")
	flag.Parse()

	cfg := fleet.Config{
		Sessions:     *sessions,
		OriginShards: *shards,
		KeepOutcomes: *outcomes,
		Workers:      *workers,
	}

	if *pprofAddr != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "fleetsim: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}

	for _, name := range splitList(*videos) {
		v, err := sensei.VideoByName(name)
		if err != nil {
			fail(err)
		}
		if *excerpt > 0 && *excerpt < v.NumChunks() {
			if v, err = v.Excerpt(0, *excerpt); err != nil {
				fail(err)
			}
		}
		cfg.Videos = append(cfg.Videos, v)
	}

	cfg.Traces = map[string]*trace.Trace{}
	for _, spec := range splitList(*traces) {
		name, mbpsStr, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("bad trace spec %q (want name=Mbps)", spec))
		}
		mbps, err := strconv.ParseFloat(mbpsStr, 64)
		if err != nil || mbps <= 0 {
			fail(fmt.Errorf("bad trace rate %q in %q", mbpsStr, spec))
		}
		cfg.Traces[name] = &trace.Trace{Name: name, BitsPerSecond: []float64{mbps * 1e6}}
	}

	for _, a := range splitList(*abrs) {
		cfg.ABRs = append(cfg.ABRs, fleet.ABR(a))
	}
	for _, s := range splitList(*timescales) {
		ts, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fail(fmt.Errorf("bad timescale %q", s))
		}
		cfg.TimeScales = append(cfg.TimeScales, ts)
	}

	if !*noWeights {
		cfg.Profile = func(v *sensei.Video) ([]float64, error) { return v.TrueSensitivity(), nil }
	}
	if *refresh > 0 {
		// The refreshed belief: true sensitivity reversed — valid weights,
		// maximally different plans for sensitivity-aware ABRs.
		cfg.Refresh = &fleet.RefreshSpec{
			After:   *refresh,
			Weights: fleet.ReversedSensitivity,
		}
	}
	if *closedLoop {
		if *noWeights {
			fail(fmt.Errorf("-closedloop needs profiled weights (drop -noweights)"))
		}
		cfg.Raters = &fleet.RaterSpec{}
	}
	if *chaosOn {
		cfg.Chaos = &fleet.ChaosSpec{Seed: *chaosSeed, Rate: *chaosRate}
	}
	if *eventsOn || *eventsDump >= 0 {
		// A trace dump needs the full per-session event lists kept (and the
		// outcome rows they ride on); a bare -events keeps only tallies.
		cfg.Events = &fleet.EventsSpec{KeepTraces: *eventsDump >= 0}
		if *eventsDump >= 0 {
			cfg.KeepOutcomes = true
		}
	}
	if *vclockOn {
		cfg.Clock = sensei.NewVirtualClock()
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	report, err := fleet.Run(ctx, cfg)
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fail(err)
		}
	} else {
		fmt.Println(report.Render())
	}
	if *vclockOn {
		// The scale banner: how much stream time the virtual clock bought.
		fmt.Fprintf(os.Stderr, "vclock: %d sessions spanned %.1f simulated s in %.2f wall s (%.0fx real time)\n",
			report.Sessions, report.VirtualSec, report.ElapsedSec, report.Speedup)
	}
	if *eventsDump >= 0 {
		dumpTrace(report, *eventsDump)
	}
	if report.Failed > 0 || !report.Reconciliation.Ok {
		os.Exit(1)
	}
}

// dumpTrace prints one fleet slot's ordered event trace as JSON lines.
func dumpTrace(report *fleet.Report, slot int) {
	for i := range report.Outcomes {
		o := &report.Outcomes[i]
		if o.Index != slot {
			continue
		}
		if o.Events == nil || len(o.Events.Trace) == 0 {
			fmt.Fprintf(os.Stderr, "fleetsim: slot %d kept no trace\n", slot)
			return
		}
		var buf []byte
		for _, ev := range o.Events.Trace {
			buf = append(ev.AppendJSON(buf[:0]), '\n')
			os.Stderr.Write(buf)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "fleetsim: no slot %d in a fleet of %d sessions\n", slot, report.Sessions)
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}
