// Command dashclient joins a session on a dashserver origin and streams a
// catalog video, driving a selectable ABR algorithm and reporting the
// delivered quality. SENSEI weights arrive via the manifest's
// SenseiWeights extension (§6); the session's egress is shaped by the
// trace chosen at join time, independently of every other session.
//
// Usage:
//
//	dashclient [-url http://127.0.0.1:8428] [-video Soccer1] [-excerpt N]
//	           [-abr sensei-fugu|fugu|bba] [-trace name] [-timescale 0]
//
// -excerpt must match the server's -excerpt so the local video model
// agrees with the manifest (the client validates the ladder). A zero
// -timescale adopts whatever the origin assigns at join.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"sensei"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8428", "origin base URL")
	name := flag.String("video", "Soccer1", "catalog video name (must be in the origin's catalog)")
	excerpt := flag.Int("excerpt", 0, "first-N-chunks excerpt; must match the server's -excerpt")
	abrName := flag.String("abr", "sensei-fugu", "abr algorithm: sensei-fugu, fugu or bba")
	traceName := flag.String("trace", "", "origin-side trace to replay (empty = origin default)")
	timescale := flag.Float64("timescale", 0, "virtual-time compression; 0 adopts the origin's")
	reqTimeout := flag.Duration("reqtimeout", 0, "per-request timeout; 0 = client default, negative disables (use for real-time sessions)")
	flag.Parse()

	v, err := sensei.VideoByName(*name)
	if err != nil {
		fail(err)
	}
	if *excerpt > 0 {
		n := *excerpt
		if n > v.NumChunks() {
			n = v.NumChunks()
		}
		if v, err = v.Excerpt(0, n); err != nil {
			fail(err)
		}
	}
	var alg sensei.Algorithm
	switch *abrName {
	case "sensei-fugu":
		alg = sensei.NewSenseiFugu()
	case "fugu":
		alg = sensei.NewFugu()
	case "bba":
		alg = sensei.NewBBA()
	default:
		fail(fmt.Errorf("unknown abr %q", *abrName))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	client := &sensei.DASHClient{
		BaseURL:        *url,
		Algorithm:      alg,
		Trace:          *traceName,
		TimeScale:      *timescale,
		RequestTimeout: *reqTimeout,
	}
	if err := client.Join(ctx, v.Name); err != nil {
		fail(err)
	}
	fmt.Printf("session %s: streaming %s from %s with %s...\n",
		client.SessionID(), v.Name, *url, alg.Name())
	sess, err := client.Stream(ctx, v)
	if err != nil {
		fail(err)
	}
	defer func() { _ = client.Leave(context.Background()) }()

	fmt.Printf("downloaded %.1f MB in %.1f virtual seconds (%.2f Mbps observed), rebuffered %.1f virtual seconds\n",
		float64(sess.BytesDownloaded)/1e6, sess.DownloadVirtualSec,
		float64(sess.BytesDownloaded)*8/sess.DownloadVirtualSec/1e6, sess.RebufferVirtualSec)
	fmt.Printf("mean bitrate: %.0f kbps, switches: %d\n",
		sess.Rendering.MeanBitrateKbps(), sess.Rendering.SwitchCount())
	if sess.Weights != nil {
		fmt.Printf("manifest carried %d sensitivity weights\n", len(sess.Weights))
		fmt.Printf("weighted session QoE: %.3f\n", sensei.WeightedSessionQoE(sess.Rendering, sess.Weights))
	}
	fmt.Printf("content-blind session QoE: %.3f\n", sensei.SessionQoE(sess.Rendering))
	fmt.Printf("latent true QoE: %.3f\n", sensei.TrueQoE(sess.Rendering))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dashclient:", err)
	os.Exit(1)
}
