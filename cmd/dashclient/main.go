// Command dashclient streams a catalog video from a dashserver instance,
// driving a selectable ABR algorithm and reporting the delivered quality.
// SENSEI weights arrive via the manifest's SenseiWeights extension (§6).
//
// Usage:
//
//	dashclient [-url http://127.0.0.1:8428] [-video Soccer1]
//	           [-abr sensei-fugu|fugu|bba] [-timescale 0.01]
package main

import (
	"flag"
	"fmt"
	"os"

	"sensei"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8428", "dashserver base URL")
	name := flag.String("video", "Soccer1", "catalog video name (must match the server)")
	abrName := flag.String("abr", "sensei-fugu", "abr algorithm: sensei-fugu, fugu or bba")
	timescale := flag.Float64("timescale", 0.01, "must match the server's timescale")
	flag.Parse()

	v, err := sensei.VideoByName(*name)
	if err != nil {
		fail(err)
	}
	var alg sensei.Algorithm
	switch *abrName {
	case "sensei-fugu":
		alg = sensei.NewSenseiFugu()
	case "fugu":
		alg = sensei.NewFugu()
	case "bba":
		alg = sensei.NewBBA()
	default:
		fail(fmt.Errorf("unknown abr %q", *abrName))
	}

	client := &sensei.DASHClient{BaseURL: *url, Algorithm: alg, TimeScale: *timescale}
	fmt.Printf("streaming %s from %s with %s...\n", v.Name, *url, alg.Name())
	sess, err := client.Stream(v)
	if err != nil {
		fail(err)
	}

	fmt.Printf("downloaded %.1f MB, rebuffered %.1f virtual seconds\n",
		float64(sess.BytesDownloaded)/1e6, sess.RebufferVirtualSec)
	fmt.Printf("mean bitrate: %.0f kbps, switches: %d\n",
		sess.Rendering.MeanBitrateKbps(), sess.Rendering.SwitchCount())
	if sess.Weights != nil {
		fmt.Printf("manifest carried %d sensitivity weights\n", len(sess.Weights))
		fmt.Printf("weighted session QoE: %.3f\n", sensei.WeightedSessionQoE(sess.Rendering, sess.Weights))
	}
	fmt.Printf("content-blind session QoE: %.3f\n", sensei.SessionQoE(sess.Rendering))
	fmt.Printf("latent true QoE: %.3f\n", sensei.TrueQoE(sess.Rendering))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dashclient:", err)
	os.Exit(1)
}
