// Command weightlib profiles catalog videos and writes a persisted weight
// library — the artifact a video-management system would attach to its
// catalog and feed into manifest generation (Fig 7 of the paper).
//
// Usage:
//
//	weightlib [-out weights.json] [-videos Soccer1,Tank] [-pop 30000]
//	weightlib -verify weights.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sensei"
	"sensei/internal/crowd"
	"sensei/internal/video"
)

func main() {
	out := flag.String("out", "weights.json", "output path for the weight library")
	names := flag.String("videos", "", "comma-separated catalog names (default: whole catalog)")
	popSize := flag.Int("pop", 30000, "rater population size")
	verify := flag.String("verify", "", "validate an existing library file and exit")
	flag.Parse()

	if *verify != "" {
		f, err := os.Open(*verify)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		lib, err := crowd.ReadWeightLibrary(f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("library OK: %d videos\n", len(lib.Weights))
		for name, w := range lib.Weights {
			fmt.Printf("  %-14s %d chunks\n", name, len(w))
		}
		return
	}

	var videos []*video.Video
	if *names == "" {
		videos = sensei.VideoCatalog()
	} else {
		for _, name := range strings.Split(*names, ",") {
			v, err := sensei.VideoByName(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			videos = append(videos, v)
		}
	}

	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: *popSize, Seed: 0x717})
	if err != nil {
		fail(err)
	}
	profiler := sensei.NewProfiler(pop)

	lib := &crowd.WeightLibrary{Weights: map[string][]float64{}}
	var totalCost float64
	for _, v := range videos {
		p, err := profiler.Profile(v)
		if err != nil {
			fail(fmt.Errorf("profiling %s: %w", v.Name, err))
		}
		lib.Weights[v.Name] = p.Weights
		totalCost += p.CostUSD
		fmt.Printf("profiled %-14s %3d chunks  $%6.1f  ($%.1f/min)\n",
			v.Name, len(p.Weights), p.CostUSD, p.CostPerMinuteUSD)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := lib.Save(f); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %d videos, total campaign cost $%.1f\n", *out, len(lib.Weights), totalCost)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "weightlib:", err)
	os.Exit(1)
}
