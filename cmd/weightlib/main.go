// Command weightlib profiles catalog videos and writes a persisted weight
// library — the artifact a video-management system would attach to its
// catalog and feed into manifest generation (Fig 7 of the paper). Library
// entries are epoch-stamped: merging a re-profiled video into an existing
// library bumps its epoch, the same versioning the live origin serves.
//
// Usage:
//
//	weightlib [-out weights.json] [-videos Soccer1,Tank] [-pop 30000]
//	weightlib -merge weights.json -videos Soccer1       # re-profile into an existing library
//	weightlib -verify weights.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"sensei"
	"sensei/internal/atomicfile"
	"sensei/internal/crowd"
	"sensei/internal/video"
)

func main() {
	out := flag.String("out", "weights.json", "output path for the weight library")
	names := flag.String("videos", "", "comma-separated catalog names (default: whole catalog)")
	popSize := flag.Int("pop", 30000, "rater population size")
	merge := flag.String("merge", "", "existing library to merge freshly profiled videos into (epochs bump)")
	verify := flag.String("verify", "", "validate an existing library file and exit")
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	if *verify != "" {
		lib := loadLibrary(*verify)
		fmt.Printf("library OK: version %d, %d videos\n", libVersion(lib), len(lib.Weights))
		for _, name := range sortedNames(lib) {
			w := lib.Weights[name]
			status := describeCatalogFit(name, w)
			fmt.Printf("  %-14s epoch %-3d %3d chunks%s\n", name, lib.EpochOf(name), len(w), status)
		}
		return
	}

	var videos []*video.Video
	if *names == "" {
		videos = sensei.VideoCatalog()
	} else {
		for _, name := range strings.Split(*names, ",") {
			v, err := sensei.VideoByName(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			videos = append(videos, v)
		}
	}

	lib := &crowd.WeightLibrary{}
	if *merge != "" {
		lib = loadLibrary(*merge)
		// A merge must not silently corrupt the serving catalog: every
		// existing entry whose vector length disagrees with its catalog
		// video is a different cut of the content, and profiles about to
		// be merged on top of it would mislabel every chunk.
		for _, name := range sortedNames(lib) {
			if v, err := sensei.VideoByName(name); err == nil && len(lib.Weights[name]) != v.NumChunks() {
				fail(fmt.Errorf("refusing to merge: library entry %q has %d weights, catalog video has %d chunks",
					name, len(lib.Weights[name]), v.NumChunks()))
			}
		}
		if !outSet {
			// Default output under -merge is the merged library itself; an
			// explicit -out (even "weights.json") is honored as given.
			*out = *merge
		}
		fmt.Printf("merging into %s: version %d, %d existing videos\n", *merge, libVersion(lib), len(lib.Weights))
	}

	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: *popSize, Seed: 0x717})
	if err != nil {
		fail(err)
	}
	profiler := sensei.NewProfiler(pop)

	var totalCost float64
	for _, v := range videos {
		p, err := profiler.Profile(v)
		if err != nil {
			fail(fmt.Errorf("profiling %s: %w", v.Name, err))
		}
		if len(p.Weights) != v.NumChunks() {
			fail(fmt.Errorf("profiling %s: %d weights for %d chunks", v.Name, len(p.Weights), v.NumChunks()))
		}
		// Set refuses chunk-count mismatches against an existing entry and
		// bumps the epoch of a re-profile.
		if err := lib.Set(v.Name, p.Weights); err != nil {
			fail(err)
		}
		totalCost += p.CostUSD
		fmt.Printf("profiled %-14s epoch %-3d %3d chunks  $%6.1f  ($%.1f/min)\n",
			v.Name, lib.EpochOf(v.Name), len(p.Weights), p.CostUSD, p.CostPerMinuteUSD)
	}

	if err := saveLibrary(*out, lib); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: version %d, %d videos, total campaign cost $%.1f\n",
		*out, crowd.WeightLibraryVersion, len(lib.Weights), totalCost)
}

// saveLibrary writes the library atomically: under -merge the output is
// usually the input library itself, and campaigns cost real dollars — a
// failed write must never leave the only copy truncated.
func saveLibrary(path string, lib *crowd.WeightLibrary) error {
	return atomicfile.Write(path, func(w io.Writer) error { return lib.Save(w) })
}

// loadLibrary opens and validates a persisted library.
func loadLibrary(path string) *crowd.WeightLibrary {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	lib, err := crowd.ReadWeightLibrary(f)
	if err != nil {
		fail(err)
	}
	return lib
}

// libVersion reports the on-disk layout version (legacy files carry none).
func libVersion(lib *crowd.WeightLibrary) int {
	if lib.Version == 0 {
		return 1
	}
	return lib.Version
}

// sortedNames lists the library's entries deterministically.
func sortedNames(lib *crowd.WeightLibrary) []string {
	names := make([]string, 0, len(lib.Weights))
	for name := range lib.Weights {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// describeCatalogFit annotates a verify row with the catalog cross-check.
func describeCatalogFit(name string, w []float64) string {
	v, err := sensei.VideoByName(name)
	if err != nil {
		return "  (not a catalog video)"
	}
	if len(w) != v.NumChunks() {
		return fmt.Sprintf("  (MISMATCH: catalog video has %d chunks)", v.NumChunks())
	}
	return ""
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "weightlib:", err)
	os.Exit(1)
}
