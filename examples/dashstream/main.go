// Dashstream: the §6 integration demo end to end over real TCP — a DASH
// server with trace-shaped egress and a weight-extended manifest, and a
// client that parses the SenseiWeights extension and drives SENSEI's ABR
// with an MSE-style delayed buffer sink.
//
//	go run ./examples/dashstream
package main

import (
	"fmt"
	"log"

	"sensei"
)

func main() {
	full, err := sensei.VideoByName("BigBuckBunny")
	if err != nil {
		log.Fatal(err)
	}
	// A two-minute excerpt keeps the demo snappy at timescale 0.005.
	v, err := full.Excerpt(0, 30)
	if err != nil {
		log.Fatal(err)
	}

	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: 30000, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	profile, err := sensei.NewProfiler(pop).Profile(v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: $%.1f/min\n", v.Name, profile.CostPerMinuteUSD)

	const timescale = 0.005 // 200x faster than real time
	tr := sensei.GenerateTrace(sensei.TraceSpec{
		Name: "isp", Kind: sensei.TraceFCC, MeanBps: 1.8e6, Seconds: 900, Seed: 51,
	})
	shaper, err := sensei.NewDASHShaper(tr, timescale)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := sensei.NewDASHServer(v, profile.Weights, shaper)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server on http://%s, bottleneck %.1f Mbps (timescale %.3f)\n", addr, tr.Mean()/1e6, timescale)

	client := &sensei.DASHClient{
		BaseURL:   "http://" + addr,
		Algorithm: sensei.NewSenseiFugu(),
		TimeScale: timescale,
	}
	sess, err := client.Stream(v)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %d chunks over TCP: %.1f MB, %.1f virtual seconds rebuffering\n",
		v.NumChunks(), float64(sess.BytesDownloaded)/1e6, sess.RebufferVirtualSec)
	if sess.Weights == nil {
		log.Fatal("manifest weights did not survive the round trip")
	}
	fmt.Printf("manifest delivered %d weights; weighted QoE %.3f, true QoE %.3f\n",
		len(sess.Weights),
		sensei.WeightedSessionQoE(sess.Rendering, sess.Weights),
		sensei.TrueQoE(sess.Rendering))
}
