// Dashstream: the §6 integration demo scaled to a multi-tenant origin —
// one process serves a two-video catalog over real TCP, sensitivity
// weights are profiled lazily (once per video, persisted to disk) and
// delivered via the SenseiWeights manifest extension, and two clients
// stream concurrently in sessions shaped by different traces, proving
// per-session bottleneck isolation.
//
//	go run ./examples/dashstream
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"sensei"
)

func main() {
	// A compact two-video catalog keeps the demo snappy.
	catalog := make([]*sensei.Video, 0, 2)
	for _, cut := range []struct {
		name   string
		chunks int
	}{{"BigBuckBunny", 30}, {"Soccer1", 30}} {
		full, err := sensei.VideoByName(cut.name)
		if err != nil {
			log.Fatal(err)
		}
		v, err := full.Excerpt(0, cut.chunks)
		if err != nil {
			log.Fatal(err)
		}
		catalog = append(catalog, v)
	}

	// Weights come from the real §4 crowdsourced pipeline, invoked lazily
	// by the origin on each video's first manifest request — never twice,
	// however many clients race — and persisted so a rerun of this demo
	// skips the campaign entirely.
	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: 30000, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	profiler := sensei.NewProfiler(pop)
	weightDir, err := os.MkdirTemp("", "sensei-weights-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(weightDir)

	const timescale = 0.005 // 200x faster than real time
	traces := map[string]*sensei.Trace{
		"broadband": sensei.GenerateTrace(sensei.TraceSpec{
			Name: "broadband", Kind: sensei.TraceFCC, MeanBps: 4e6, Seconds: 900, Seed: 51,
		}),
		"commute": sensei.GenerateTrace(sensei.TraceSpec{
			Name: "commute", Kind: sensei.TraceHSDPA, MeanBps: 1.2e6, Seconds: 900, Seed: 52,
		}),
	}
	o, err := sensei.NewDASHOrigin(sensei.DASHOriginConfig{
		Catalog: catalog,
		Profile: func(v *sensei.Video) ([]float64, error) {
			fmt.Printf("profiling %s...\n", v.Name)
			p, err := profiler.Profile(v)
			if err != nil {
				return nil, err
			}
			fmt.Printf("profiled %s: $%.1f/min\n", v.Name, p.CostPerMinuteUSD)
			return p.Weights, nil
		},
		WeightDir:    weightDir,
		Traces:       traces,
		DefaultTrace: "broadband",
		TimeScale:    timescale,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := sensei.NewDASHServer(o)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("origin on http://%s: %d videos, traces broadband (4 Mbps) and commute (1.2 Mbps)\n",
		addr, len(catalog))

	// Two tenants stream at the same time: same origin, different videos,
	// different bottlenecks.
	type tenant struct {
		video *sensei.Video
		trace string
	}
	tenants := []tenant{
		{catalog[0], "broadband"},
		{catalog[1], "commute"},
	}
	sessions := make([]*sensei.DASHSession, len(tenants))
	var wg sync.WaitGroup
	for i, tn := range tenants {
		wg.Add(1)
		go func(i int, tn tenant) {
			defer wg.Done()
			client := &sensei.DASHClient{
				BaseURL:   "http://" + addr,
				Algorithm: sensei.NewSenseiFugu(),
				Trace:     tn.trace,
			}
			sess, err := client.Stream(context.Background(), tn.video)
			if err != nil {
				log.Fatal(err)
			}
			sessions[i] = sess
		}(i, tn)
	}
	wg.Wait()

	for i, sess := range sessions {
		tn := tenants[i]
		if sess.Weights == nil {
			log.Fatal("manifest weights did not survive the round trip")
		}
		fmt.Printf("%-14s on %-9s: %.1f MB, %.2f Mbps observed, %.1f virtual s rebuffering, weighted QoE %.3f, true QoE %.3f\n",
			tn.video.Name, tn.trace,
			float64(sess.BytesDownloaded)/1e6,
			float64(sess.BytesDownloaded)*8/sess.DownloadVirtualSec/1e6,
			sess.RebufferVirtualSec,
			sensei.WeightedSessionQoE(sess.Rendering, sess.Weights),
			sensei.TrueQoE(sess.Rendering))
	}

	st := o.Stats()
	fmt.Printf("origin stats: %d sessions, %.1f MB served, %d segments, %d profiles computed\n",
		st.SessionsCreated, float64(st.BytesServed)/1e6, st.SegmentsServed, st.ProfilesComputed)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("origin drained cleanly")
}
