// Quickstart: profile a video's dynamic quality sensitivity with the
// simulated crowd, then stream it with SENSEI's weighted MPC and compare
// against the buffer-based baseline on the same network trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sensei"
)

func main() {
	// 1. Pick a source video from the paper's test set (Table 1).
	v, err := sensei.VideoByName("Soccer1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video: %s (%s, %d chunks of 4s)\n", v.Name, v.Genre, v.NumChunks())

	// 2. Profile its per-chunk quality sensitivity via the crowdsourcing
	// pipeline (§4): windowed clips with injected incidents, rated by a
	// simulated MTurk population, weights inferred by regression.
	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: 30000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	profile, err := sensei.NewProfiler(pop).Profile(v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d chunks for $%.1f ($%.1f per minute of video)\n",
		len(profile.Weights), profile.CostUSD, profile.CostPerMinuteUSD)

	// 3. Stream over a constrained cellular-like trace with SENSEI-Fugu
	// (weighted objective + proactive rebuffering) vs plain BBA and Fugu.
	tr := sensei.GenerateTrace(sensei.TraceSpec{
		Name: "cellular", Kind: sensei.TraceHSDPA, MeanBps: 1.2e6, Seconds: 900, Seed: 21,
	})
	for _, run := range []struct {
		alg     sensei.Algorithm
		weights []float64
	}{
		{sensei.NewBBA(), nil},
		{sensei.NewFugu(), nil},
		{sensei.NewSenseiFugu(), profile.Weights},
	} {
		res, err := sensei.Stream(v, tr, run.alg, run.weights)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s trueQoE=%.3f meanBitrate=%4.0fkbps rebuffer=%4.1fs switches=%d\n",
			run.alg.Name(), sensei.TrueQoE(res.Rendering),
			res.Rendering.MeanBitrateKbps(), res.RebufferSec, res.Rendering.SwitchCount())
	}
}
