// Fleet: the production-scale workload demo — one multi-tenant origin, a
// 48-session streaming fleet mixing four videos, two traces, two
// timescales and all four ABR algorithms, with the aggregate report's
// client-side ledgers reconciled exactly against the origin's /stats.
// This is the scenario the client/simulator parity contract (DESIGN.md)
// exists for: one diverging client corrupts cohort comparisons, and the
// exact-ledger check catches it.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"

	"sensei"
)

func main() {
	catalog := make([]*sensei.Video, 0, 4)
	for _, name := range []string{"Soccer1", "Tank", "Mountain", "Lava"} {
		full, err := sensei.VideoByName(name)
		if err != nil {
			log.Fatal(err)
		}
		v, err := full.Excerpt(0, 8)
		if err != nil {
			log.Fatal(err)
		}
		catalog = append(catalog, v)
	}

	traces := map[string]*sensei.Trace{
		"broadband": sensei.GenerateTrace(sensei.TraceSpec{
			Name: "broadband", Kind: sensei.TraceFCC, MeanBps: 6e6, Seconds: 900, Seed: 71,
		}),
		"commute": sensei.GenerateTrace(sensei.TraceSpec{
			Name: "commute", Kind: sensei.TraceHSDPA, MeanBps: 1.5e6, Seconds: 900, Seed: 72,
		}),
	}

	report, err := sensei.RunFleet(context.Background(), sensei.FleetConfig{
		Sessions:   48,
		Videos:     catalog,
		Traces:     traces,
		ABRs:       []sensei.FleetABR{sensei.FleetRateBased, sensei.FleetBOLA, sensei.FleetMPC, sensei.FleetSensei},
		TimeScales: []float64{0.05, 0.1},
		Profile:    func(v *sensei.Video) ([]float64, error) { return v.TrueSensitivity(), nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Render())
	if report.Failed > 0 || !report.Reconciliation.Ok {
		log.Fatal("fleet did not reconcile — client and origin ledgers disagree")
	}
}
