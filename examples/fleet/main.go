// Fleet: the production-scale workload demo — one multi-tenant origin, a
// 48-session streaming fleet mixing four videos, two traces, two
// timescales and all four ABR algorithms, with the aggregate report's
// client-side ledgers reconciled exactly against the origin's /stats.
// This is the scenario the client/simulator parity contract (DESIGN.md)
// exists for: one diverging client corrupts cohort comparisons, and the
// exact-ledger check catches it.
//
// The second run closes the feedback loop: every session carries a
// mos-backed rater persona posting one 1–5 score per rendered chunk, and
// the origin's ingest autopilot converts the accumulated evidence into
// autonomous sensitivity refreshes mid-run — no POST /refresh anywhere.
// Sessions that span an epoch bump show up as a "1→N" cohort in the
// per-epoch QoE breakdown, and the ingest ledger (posted / accepted /
// quarantined, refreshes triggered / applied) reconciles exactly too.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"

	"sensei"
)

func main() {
	catalog := make([]*sensei.Video, 0, 4)
	for _, name := range []string{"Soccer1", "Tank", "Mountain", "Lava"} {
		full, err := sensei.VideoByName(name)
		if err != nil {
			log.Fatal(err)
		}
		v, err := full.Excerpt(0, 8)
		if err != nil {
			log.Fatal(err)
		}
		catalog = append(catalog, v)
	}

	traces := map[string]*sensei.Trace{
		"broadband": sensei.GenerateTrace(sensei.TraceSpec{
			Name: "broadband", Kind: sensei.TraceFCC, MeanBps: 6e6, Seconds: 900, Seed: 71,
		}),
		"commute": sensei.GenerateTrace(sensei.TraceSpec{
			Name: "commute", Kind: sensei.TraceHSDPA, MeanBps: 1.5e6, Seconds: 900, Seed: 72,
		}),
	}

	base := sensei.FleetConfig{
		Sessions:   48,
		Videos:     catalog,
		Traces:     traces,
		ABRs:       []sensei.FleetABR{sensei.FleetRateBased, sensei.FleetBOLA, sensei.FleetMPC, sensei.FleetSensei},
		TimeScales: []float64{0.05, 0.1},
		Profile:    func(v *sensei.Video) ([]float64, error) { return v.TrueSensitivity(), nil },
	}

	fmt.Println("== mixed fleet ==")
	report, err := sensei.RunFleet(context.Background(), base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Render())
	if report.Failed > 0 || !report.Reconciliation.Ok {
		log.Fatal("fleet did not reconcile — client and origin ledgers disagree")
	}

	// Round two: the same mix, loop closed. Rater cohorts post per-chunk
	// scores; the autopilot refreshes chunk windows on its own once the
	// confidence gate (samples, interval, hysteresis) passes.
	closed := base
	closed.Raters = &sensei.FleetRaterSpec{}
	fmt.Println("\n== closed loop ==")
	report, err = sensei.RunFleet(context.Background(), closed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Render())
	if report.Failed > 0 || !report.Reconciliation.Ok {
		log.Fatal("closed-loop fleet did not reconcile")
	}
	if ing := report.Origin.Ingest; ing != nil && ing.RefreshesApplied > 0 {
		fmt.Printf("\nthe crowd drove %d autonomous epoch bump(s); epochs now: %v\n",
			ing.RefreshesApplied, report.Origin.WeightEpochs)
	} else {
		fmt.Println("\nno refresh fired this run — the crowd's evidence never cleared the confidence gate")
	}

	// Round three: the same mix under weather. Seeded fault injection on
	// every origin endpoint — 5xx, connection resets, stalls, truncated
	// segment bodies — absorbed by the clients' bounded retry budgets. The
	// report gains a two-sided fault ledger; reconciliation now also
	// demands per-endpoint-kind equality between faults injected and
	// faults survived, and the whole schedule replays from the seed.
	chaotic := base
	chaotic.Chaos = &sensei.FleetChaosSpec{Seed: 0xbad, Rate: 0.08}
	fmt.Println("\n== chaos ==")
	report, err = sensei.RunFleet(context.Background(), chaotic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Render())
	if report.Failed > 0 || !report.Reconciliation.Ok {
		log.Fatal("chaos fleet did not reconcile — a fault was lost or a session died")
	}
	if cl := report.Chaos; cl != nil {
		var injected int64
		for _, n := range cl.Injected {
			injected += n
		}
		fmt.Printf("\nsurvived all %d injected faults in %d retries; replay the run with seed %#x\n",
			injected, cl.Retries, cl.Seed)
	}
}
