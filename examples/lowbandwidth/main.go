// Lowbandwidth: the bandwidth-savings story of Fig 12b. For a target QoE,
// sweep the bottleneck bandwidth downward and find the minimum each
// algorithm needs — SENSEI reaches the target on less bandwidth because it
// spends quality only where users notice.
//
//	go run ./examples/lowbandwidth
package main

import (
	"fmt"
	"log"

	"sensei"
)

func main() {
	v, err := sensei.VideoByName("FPS1")
	if err != nil {
		log.Fatal(err)
	}
	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: 30000, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	profile, err := sensei.NewProfiler(pop).Profile(v)
	if err != nil {
		log.Fatal(err)
	}

	base := sensei.GenerateTrace(sensei.TraceSpec{
		Name: "home-wifi", Kind: sensei.TraceFCC, MeanBps: 3.2e6, Seconds: 900, Seed: 41,
	})

	const target = 0.70
	fmt.Printf("video %s, target true QoE %.2f\n\n", v.Name, target)
	fmt.Printf("%-7s %10s %10s %10s\n", "scale", "Fugu", "SENSEI", "BBA")

	type curvePoint struct{ fugu, sensei, bba float64 }
	scales := []int{100, 85, 70, 55, 40, 25}
	points := map[int]curvePoint{}
	for _, sc := range scales {
		tr := base.Scaled(float64(sc) / 100)
		rf, err := sensei.Stream(v, tr, sensei.NewFugu(), nil)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := sensei.Stream(v, tr, sensei.NewSenseiFugu(), profile.Weights)
		if err != nil {
			log.Fatal(err)
		}
		rb, err := sensei.Stream(v, tr, sensei.NewBBA(), nil)
		if err != nil {
			log.Fatal(err)
		}
		p := curvePoint{
			fugu:   sensei.TrueQoE(rf.Rendering),
			sensei: sensei.TrueQoE(rs.Rendering),
			bba:    sensei.TrueQoE(rb.Rendering),
		}
		points[sc] = p
		fmt.Printf("%-6d%% %10.3f %10.3f %10.3f\n", sc, p.fugu, p.sensei, p.bba)
	}

	need := func(pick func(curvePoint) float64) int {
		min := scales[0]
		for _, sc := range scales {
			if pick(points[sc]) >= target && sc < min {
				min = sc
			}
		}
		return min
	}
	nf := need(func(p curvePoint) float64 { return p.fugu })
	ns := need(func(p curvePoint) float64 { return p.sensei })
	nb := need(func(p curvePoint) float64 { return p.bba })
	fmt.Printf("\nminimum bandwidth scale to reach QoE %.2f: Fugu %d%%, SENSEI %d%%, BBA %d%%\n", target, nf, ns, nb)
	if ns < nf {
		fmt.Printf("SENSEI saves %.0f%% bandwidth vs Fugu at the same QoE\n", 100*float64(nf-ns)/float64(nf))
	}
}
