// Sportscast: the paper's motivating scenario (Fig 11). A soccer broadcast
// has a goal moment users watch intently; SENSEI aligns quality with it —
// lowering bitrate or even proactively rebuffering during routine gameplay
// so the goal plays smoothly at high quality.
//
//	go run ./examples/sportscast
package main

import (
	"fmt"
	"log"
	"strings"

	"sensei"
)

func main() {
	v, err := sensei.VideoByName("Soccer1")
	if err != nil {
		log.Fatal(err)
	}
	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: 30000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	profile, err := sensei.NewProfiler(pop).Profile(v)
	if err != nil {
		log.Fatal(err)
	}

	// Find the most sensitive stretch — the "shoot & goal" moment.
	peak := 0
	for i, w := range profile.Weights {
		if w > profile.Weights[peak] {
			peak = i
		}
	}
	fmt.Printf("most sensitive moment: chunk %d (t=%ds), weight %.2f\n",
		peak, peak*4, profile.Weights[peak])

	// A constrained link that cannot sustain high quality everywhere.
	tr := sensei.GenerateTrace(sensei.TraceSpec{
		Name: "stadium-cell", Kind: sensei.TraceHSDPA, MeanBps: 1.4e6, Seconds: 900, Seed: 31,
	})

	fugu, err := sensei.Stream(v, tr, sensei.NewFugu(), nil)
	if err != nil {
		log.Fatal(err)
	}
	sens, err := sensei.Stream(v, tr, sensei.NewSenseiFugu(), profile.Weights)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %8s %8s\n", "", "Fugu", "SENSEI")
	fmt.Printf("%-14s %8.3f %8.3f\n", "true QoE", sensei.TrueQoE(fugu.Rendering), sensei.TrueQoE(sens.Rendering))
	fmt.Printf("%-14s %7.0fk %7.0fk\n", "mean bitrate", fugu.Rendering.MeanBitrateKbps(), sens.Rendering.MeanBitrateKbps())
	fmt.Printf("%-14s %7.1fs %7.1fs\n", "rebuffering", fugu.RebufferSec, sens.RebufferSec)
	fmt.Printf("%-14s %7.1fs %7.1fs\n", "  proactive", fugu.ProactiveStallSec, sens.ProactiveStallSec)

	// Show the alignment around the goal: delivered rung per chunk in a
	// window around the peak, annotated with the sensitivity weight.
	lo, hi := peak-4, peak+4
	if lo < 0 {
		lo = 0
	}
	if hi > v.NumChunks()-1 {
		hi = v.NumChunks() - 1
	}
	fmt.Println("\ndelivery around the goal (rung 0=300k ... 4=2850k):")
	fmt.Printf("%-8s %-10s %-12s %-12s\n", "chunk", "weight", "Fugu rung", "SENSEI rung")
	for i := lo; i <= hi; i++ {
		mark := ""
		if i == peak {
			mark = "  <- goal"
		}
		fmt.Printf("%-8d %-10.2f %-12s %-12s%s\n", i, profile.Weights[i],
			rungBar(fugu.Rendering.Rungs[i]), rungBar(sens.Rendering.Rungs[i]), mark)
	}

	hiW, loW := avgRungBySensitivity(profile.Weights, sens.Rendering.Rungs)
	fmt.Printf("\nSENSEI mean rung at high-sensitivity chunks: %.2f, at low: %.2f\n", hiW, loW)
}

func rungBar(r int) string {
	return fmt.Sprintf("%d %s", r, strings.Repeat("*", r+1))
}

func avgRungBySensitivity(w []float64, rungs []int) (hi, lo float64) {
	var hiN, loN float64
	for i := range w {
		if w[i] > 1.2 {
			hi += float64(rungs[i])
			hiN++
		} else if w[i] < 0.8 {
			lo += float64(rungs[i])
			loN++
		}
	}
	if hiN > 0 {
		hi /= hiN
	}
	if loN > 0 {
		lo /= loN
	}
	return hi, lo
}
