// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices called out in DESIGN.md.
//
// Each benchmark regenerates its artifact end to end (fixtures are shared
// and cached across benchmarks within a run) and reports headline numbers
// as custom metrics, so `go test -bench=. -benchmem` doubles as the
// reproduction run. cmd/senseibench prints the full tables.
package sensei_test

import (
	"sync"
	"testing"

	"sensei/internal/abr"
	"sensei/internal/crowd"
	"sensei/internal/experiments"
	"sensei/internal/mos"
	"sensei/internal/player"
	"sensei/internal/stats"
	"sensei/internal/trace"
	"sensei/internal/video"
)

// benchLab shares fixtures across benchmarks; Quick keeps the full run
// under a few minutes while preserving every experimental shape.
var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func lab() *experiments.Lab {
	benchLabOnce.Do(func() { benchLab = experiments.NewLab(experiments.Quick) })
	return benchLab
}

func BenchmarkTable1VideoSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab().Table1()
		if len(res.Rows) != 16 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig1RebufferPositions(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig1()
		if err != nil {
			b.Fatal(err)
		}
		gap = res.GapPct
	}
	b.ReportMetric(100*gap, "maxMinGap%")
}

func BenchmarkFig2ModelAccuracy(b *testing.B) {
	var senseiErr, ksqiErr float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig2()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Model {
			case "SENSEI":
				senseiErr = row.MeanRelErr
			case "KSQI":
				ksqiErr = row.MeanRelErr
			}
		}
	}
	b.ReportMetric(100*senseiErr, "senseiErr%")
	b.ReportMetric(100*ksqiErr, "ksqiErr%")
}

func BenchmarkFig3QoEGapCDF(b *testing.B) {
	var above40 float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig3()
		if err != nil {
			b.Fatal(err)
		}
		above40 = res.Above40Pct
	}
	b.ReportMetric(100*above40, "seriesAbove40%")
}

func BenchmarkFig4IncidentLocation(b *testing.B) {
	var srcc float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig4()
		if err != nil {
			b.Fatal(err)
		}
		srcc = stats.Spearman(res.MOS[0], res.MOS[1])
	}
	b.ReportMetric(srcc, "srcc1sVs4s")
}

func BenchmarkFig5RankCorrelation(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig5()
		if err != nil {
			b.Fatal(err)
		}
		mean = stats.Mean(res.Rebuf1Vs4)
	}
	b.ReportMetric(mean, "meanSRCC")
}

func BenchmarkFig6PotentialGains(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig6()
		if err != nil {
			b.Fatal(err)
		}
		var g, n float64
		for k := range res.ScalePct {
			g += (res.AwareQoE[k] - res.UnawareQoE[k]) / res.UnawareQoE[k]
			n++
		}
		gain = g / n
	}
	b.ReportMetric(100*gain, "meanAwareGain%")
}

func BenchmarkFig12aQoEGainCDF(b *testing.B) {
	var senseiMed, fuguMed float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig12a()
		if err != nil {
			b.Fatal(err)
		}
		senseiMed = stats.Percentile(res.SenseiGains, 0.5)
		fuguMed = stats.Percentile(res.FuguGains, 0.5)
	}
	b.ReportMetric(100*senseiMed, "senseiMedGain%")
	b.ReportMetric(100*fuguMed, "fuguMedGain%")
}

func BenchmarkFig12bBandwidthSavings(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig12b()
		if err != nil {
			b.Fatal(err)
		}
		saving = res.BandwidthSavingPct
	}
	b.ReportMetric(100*saving, "bwSaving%")
}

func BenchmarkFig12cCostVsQoE(b *testing.B) {
	var pruning float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig12c()
		if err != nil {
			b.Fatal(err)
		}
		pruning = res.PruningSavingPct
	}
	b.ReportMetric(100*pruning, "costCut%")
}

func BenchmarkFig13PerVideo(b *testing.B) {
	var senseiMean float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig13()
		if err != nil {
			b.Fatal(err)
		}
		senseiMean = stats.Mean(res.SenseiGain)
	}
	b.ReportMetric(100*senseiMean, "senseiMeanGain%")
}

func BenchmarkFig14PerTrace(b *testing.B) {
	var lowGain float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig14()
		if err != nil {
			b.Fatal(err)
		}
		lowGain = res.SenseiGain[0]
	}
	b.ReportMetric(100*lowGain, "lowestTraceGain%")
}

func BenchmarkFig15PredictionAccuracy(b *testing.B) {
	var senseiPLCC float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig15()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Model == "SENSEI" {
				senseiPLCC = row.PLCC
			}
		}
	}
	b.ReportMetric(senseiPLCC, "senseiPLCC")
}

func BenchmarkFig16CostPruning(b *testing.B) {
	var panels float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig16()
		if err != nil {
			b.Fatal(err)
		}
		panels = float64(len(res.Panels))
	}
	b.ReportMetric(panels, "panels")
}

func BenchmarkFig17BandwidthVariance(b *testing.B) {
	var wins float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig17()
		if err != nil {
			b.Fatal(err)
		}
		wins = 0
		for k := range res.StdDevKbps {
			if res.SenseiFugu[k] >= res.Fugu[k] {
				wins++
			}
		}
	}
	b.ReportMetric(wins, "senseiWins")
}

func BenchmarkFig18aBaseABR(b *testing.B) {
	var fuguGain, senseiGain float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig18()
		if err != nil {
			b.Fatal(err)
		}
		fuguGain = res.FuguBase
		senseiGain = res.FuguSensei
	}
	b.ReportMetric(100*fuguGain, "fuguGain%")
	b.ReportMetric(100*senseiGain, "senseiFuguGain%")
}

func BenchmarkFig18bBreakdown(b *testing.B) {
	var bitrateOnly, full float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig18()
		if err != nil {
			b.Fatal(err)
		}
		bitrateOnly = res.BreakBitrateOnly
		full = res.BreakFull
	}
	b.ReportMetric(100*bitrateOnly, "bitrateOnly%")
	b.ReportMetric(100*full, "fullSensei%")
}

func BenchmarkFig20CVBaselines(b *testing.B) {
	var worstSRCC float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Fig20()
		if err != nil {
			b.Fatal(err)
		}
		worstSRCC = -1
		for _, s := range res.MeanSRCC {
			if s > worstSRCC {
				worstSRCC = s
			}
		}
	}
	b.ReportMetric(worstSRCC, "bestCVModelSRCC")
}

func BenchmarkSanityMTurkVsLab(b *testing.B) {
	var maxDiff float64
	for i := 0; i < b.N; i++ {
		res, err := lab().Sanity()
		if err != nil {
			b.Fatal(err)
		}
		maxDiff = res.MaxRelDiffPct
	}
	b.ReportMetric(100*maxDiff, "maxRelDiff%")
}

// --- Ablations (DESIGN.md) ---

// ablationFixture builds a small video/weights/trace set shared by the
// ablation benches.
type ablationFixture struct {
	videos  []*video.Video
	weights map[string][]float64
	traces  []*trace.Trace
}

var (
	ablationOnce sync.Once
	ablation     *ablationFixture
)

func ablationSetup(b *testing.B) *ablationFixture {
	b.Helper()
	ablationOnce.Do(func() {
		videos := video.TestSet()[:4]
		pop, err := mos.NewPopulation(mos.PopulationConfig{Size: 20000, Seed: 0xab1a})
		if err != nil {
			panic(err)
		}
		weights, _, err := crowd.NewProfiler(pop).ProfileAll(videos)
		if err != nil {
			panic(err)
		}
		all := trace.TestSet()
		ablation = &ablationFixture{
			videos:  videos,
			weights: weights,
			traces:  []*trace.Trace{all[1], all[3], all[5]},
		}
	})
	return ablation
}

// BenchmarkAblationHorizon sweeps the MPC look-ahead h. The paper picks
// h=5, observing gains flatten beyond 4.
func BenchmarkAblationHorizon(b *testing.B) {
	fx := ablationSetup(b)
	horizons := []int{2, 3, 4, 5}
	qoes := make([]float64, len(horizons))
	for i := 0; i < b.N; i++ {
		for hi, h := range horizons {
			var sum, n float64
			for _, v := range fx.videos {
				for _, tr := range fx.traces {
					alg := abr.NewSenseiFugu()
					alg.Horizon = h
					res, err := player.Play(v, tr, alg, fx.weights[v.Name], player.Config{})
					if err != nil {
						b.Fatal(err)
					}
					sum += mos.TrueQoE(res.Rendering)
					n++
				}
			}
			qoes[hi] = sum / n
		}
	}
	b.ReportMetric(qoes[0], "qoeH2")
	b.ReportMetric(qoes[2], "qoeH4")
	b.ReportMetric(qoes[3], "qoeH5")
}

// BenchmarkAblationRidge sweeps the weight-inference regularizer.
func BenchmarkAblationRidge(b *testing.B) {
	pop, err := mos.NewPopulation(mos.PopulationConfig{Size: 20000, Seed: 0xab1b})
	if err != nil {
		b.Fatal(err)
	}
	v := video.TestSet()[1]
	lambdas := []float64{0.005, 0.05, 0.5}
	srccs := make([]float64, len(lambdas))
	for i := 0; i < b.N; i++ {
		for li, lambda := range lambdas {
			profiler := crowd.NewProfiler(pop)
			profiler.Params.RidgeLambda = lambda
			p, err := profiler.Profile(v)
			if err != nil {
				b.Fatal(err)
			}
			srccs[li] = stats.Spearman(p.Weights, v.TrueSensitivity())
		}
	}
	b.ReportMetric(srccs[0], "srccLam.005")
	b.ReportMetric(srccs[1], "srccLam.05")
	b.ReportMetric(srccs[2], "srccLam.5")
}

// BenchmarkAblationRiskAversion sweeps the MPC risk blend.
func BenchmarkAblationRiskAversion(b *testing.B) {
	fx := ablationSetup(b)
	lambdas := []float64{0, 0.35, 0.7}
	qoes := make([]float64, len(lambdas))
	for i := 0; i < b.N; i++ {
		for li, lam := range lambdas {
			var sum, n float64
			for _, v := range fx.videos {
				for _, tr := range fx.traces {
					alg := abr.NewSenseiFugu()
					alg.RiskAversion = lam
					res, err := player.Play(v, tr, alg, fx.weights[v.Name], player.Config{})
					if err != nil {
						b.Fatal(err)
					}
					sum += mos.TrueQoE(res.Rendering)
					n++
				}
			}
			qoes[li] = sum / n
		}
	}
	b.ReportMetric(qoes[0], "qoeRisk0")
	b.ReportMetric(qoes[1], "qoeRisk.35")
	b.ReportMetric(qoes[2], "qoeRisk.7")
}
