package sensei_test

import (
	"context"
	"testing"

	"sensei"
)

// TestPublicAPIWorkflow exercises the documented quickstart path end to end
// through the facade only.
func TestPublicAPIWorkflow(t *testing.T) {
	v, err := sensei.VideoByName("Soccer1")
	if err != nil {
		t.Fatal(err)
	}
	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	clip, err := v.Excerpt(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := sensei.NewProfiler(pop).Profile(clip)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile.Weights) != clip.NumChunks() {
		t.Fatalf("%d weights", len(profile.Weights))
	}
	tr := sensei.GenerateTrace(sensei.TraceSpec{
		Name: "api", Kind: sensei.TraceFCC, MeanBps: 1.5e6, Seconds: 600, Seed: 2,
	})
	res, err := sensei.Stream(clip, tr, sensei.NewSenseiFugu(), profile.Weights)
	if err != nil {
		t.Fatal(err)
	}
	q := sensei.TrueQoE(res.Rendering)
	if q <= 0 || q > 1 {
		t.Fatalf("QoE %v out of range", q)
	}
	if sensei.SessionQoE(res.Rendering) <= 0 {
		t.Fatal("session QoE not positive")
	}
	if sensei.WeightedSessionQoE(res.Rendering, profile.Weights) <= 0 {
		t.Fatal("weighted session QoE not positive")
	}
}

func TestPublicAPICatalog(t *testing.T) {
	if got := len(sensei.VideoCatalog()); got != 16 {
		t.Fatalf("catalog size %d", got)
	}
	if got := len(sensei.EvaluationTraces()); got != 10 {
		t.Fatalf("trace set size %d", got)
	}
}

func TestPublicAPIMOS(t *testing.T) {
	v, err := sensei.VideoByName("Tank")
	if err != nil {
		t.Fatal(err)
	}
	clip, err := v.Excerpt(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := sensei.NewPopulation(sensei.PopulationConfig{Size: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := sensei.GenerateTrace(sensei.TraceSpec{Name: "m", Kind: sensei.TraceHSDPA, MeanBps: 2e6, Seconds: 300, Seed: 4})
	res, err := sensei.Stream(clip, tr, sensei.NewBBA(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sensei.CollectMOS(pop, res.Rendering, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m < 0 || m > 1 {
		t.Fatalf("MOS %v", m)
	}
}

func TestPublicAPIDASH(t *testing.T) {
	v, err := sensei.VideoByName("Lava")
	if err != nil {
		t.Fatal(err)
	}
	clip, err := v.Excerpt(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := sensei.VideoByName("Tank")
	if err != nil {
		t.Fatal(err)
	}
	clip2, err := v2.Excerpt(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := sensei.GenerateTrace(sensei.TraceSpec{Name: "d", Kind: sensei.TraceFCC, MeanBps: 5e6, Seconds: 300, Seed: 5})
	o, err := sensei.NewDASHOrigin(sensei.DASHOriginConfig{
		Catalog: []*sensei.Video{clip, clip2},
		Profile: func(v *sensei.Video) ([]float64, error) {
			weights := make([]float64, v.NumChunks())
			for i := range weights {
				weights[i] = 1
			}
			return weights, nil
		},
		Traces:       map[string]*sensei.Trace{"d": tr},
		DefaultTrace: "d",
		TimeScale:    0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := sensei.NewDASHServer(o)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &sensei.DASHClient{BaseURL: "http://" + addr, Algorithm: sensei.NewBBA()}
	sess, err := client.Stream(context.Background(), clip)
	if err != nil {
		t.Fatal(err)
	}
	if sess.BytesDownloaded == 0 {
		t.Fatal("no traffic")
	}
	if len(sess.Weights) != clip.NumChunks() {
		t.Fatalf("manifest carried %d weights", len(sess.Weights))
	}
	st := o.Stats()
	if st.ActiveSessions != 1 || st.BytesServed != sess.BytesDownloaded {
		t.Fatalf("origin stats %+v", st)
	}
	weights := make([]float64, clip.NumChunks())
	for i := range weights {
		weights[i] = 1
	}
	mpd, err := sensei.BuildMPD(clip, weights)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpd.Encode(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIFleet(t *testing.T) {
	catalog := make([]*sensei.Video, 0, 2)
	for _, name := range []string{"Soccer1", "Tank"} {
		v, err := sensei.VideoByName(name)
		if err != nil {
			t.Fatal(err)
		}
		clip, err := v.Excerpt(0, 4)
		if err != nil {
			t.Fatal(err)
		}
		catalog = append(catalog, clip)
	}
	tr := sensei.GenerateTrace(sensei.TraceSpec{Name: "f", Kind: sensei.TraceFCC, MeanBps: 2e7, Seconds: 300, Seed: 9})
	report, err := sensei.RunFleet(context.Background(), sensei.FleetConfig{
		Sessions:   6,
		Videos:     catalog,
		Traces:     map[string]*sensei.Trace{"f": tr},
		ABRs:       []sensei.FleetABR{sensei.FleetRateBased, sensei.FleetSensei},
		TimeScales: []float64{0.05},
		Profile:    func(v *sensei.Video) ([]float64, error) { return v.TrueSensitivity(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed != 0 || !report.Reconciliation.Ok {
		t.Fatalf("fleet did not reconcile:\n%s", report.Render())
	}
	if report.Origin.BytesServed != report.BytesDownloaded {
		t.Fatalf("ledger mismatch: origin %d, fleet %d", report.Origin.BytesServed, report.BytesDownloaded)
	}
}

// TestPublicAPILiveSensitivity drives the live-plane facade: frozen
// sources reproduce Stream exactly, a versioned holder publishes an epoch
// bump that mid-session snapshots observe, and a fleet with a scheduled
// refresh reconciles with every session on the new epoch.
func TestPublicAPILiveSensitivity(t *testing.T) {
	v, err := sensei.VideoByName("Soccer1")
	if err != nil {
		t.Fatal(err)
	}
	clip, err := v.Excerpt(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := clip.TrueSensitivity()
	tr := sensei.GenerateTrace(sensei.TraceSpec{
		Name: "live", Kind: sensei.TraceFCC, MeanBps: 2.5e6, Seconds: 600, Seed: 9,
	})

	// Frozen source == legacy Stream, chunk for chunk.
	a, err := sensei.Stream(clip, tr, sensei.NewSenseiFugu(), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sensei.StreamWithSource(clip, tr, sensei.NewSenseiFugu(), sensei.FreezeWeights(clip.Name, w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rendering.Rungs {
		if a.Rendering.Rungs[i] != b.Rendering.Rungs[i] {
			t.Fatalf("frozen source diverged at chunk %d", i)
		}
	}
	for _, e := range b.ChunkEpochs {
		if e != 1 {
			t.Fatalf("frozen epochs %v", b.ChunkEpochs)
		}
	}

	// A versioned holder: publish bumps the epoch atomically and the next
	// session streams under it.
	holder := sensei.NewVersionedWeights(clip.Name, w)
	if _, err := holder.Publish(w); err != nil {
		t.Fatal(err)
	}
	c, err := sensei.StreamWithSource(clip, tr, sensei.NewSenseiFugu(), holder)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range c.ChunkEpochs {
		if e != 2 {
			t.Fatalf("versioned epochs %v", c.ChunkEpochs)
		}
	}
}
