package sensei_test

import (
	"bytes"
	"testing"

	"sensei"
	"sensei/internal/abr"
	"sensei/internal/crowd"
	"sensei/internal/mos"
	"sensei/internal/player"
	"sensei/internal/qoe"
	"sensei/internal/stats"
	"sensei/internal/trace"
	"sensei/internal/video"
)

// TestPipelineWeightsPredictFreshRenderings is the system's core claim as
// one test: weights profiled from crowdsourced ratings of *incident clips*
// must make the SENSEI QoE model accurate on *unrelated ABR renderings* of
// the same video.
func TestPipelineWeightsPredictFreshRenderings(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is slow")
	}
	full, err := video.ByName("Wrestling")
	if err != nil {
		t.Fatal(err)
	}
	v, err := full.Excerpt(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := mos.NewPopulation(mos.PopulationConfig{Size: 20000, Seed: 0x1407})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := crowd.NewProfiler(pop).Profile(v)
	if err != nil {
		t.Fatal(err)
	}

	model := qoe.NewSenseiModel(&qoe.KSQI{}, map[string][]float64{v.Name: profile.Weights})
	blind := qoe.NewSenseiModel(&qoe.KSQI{}, map[string][]float64{v.Name: uniform(v.NumChunks())})

	// Fresh renderings the profiler never saw: random ABR-like deliveries.
	rng := stats.NewRNG(0x1408)
	var pWeighted, pBlind, truth []float64
	for i := 0; i < 60; i++ {
		r := qoe.NewRendering(v)
		for c := range r.Rungs {
			r.Rungs[c] = rng.Intn(len(v.Ladder))
		}
		if rng.Bool(0.5) {
			r.StallSec[rng.Intn(v.NumChunks())] = float64(1 + rng.Intn(2))
		}
		pWeighted = append(pWeighted, model.Predict(r))
		pBlind = append(pBlind, blind.Predict(r))
		truth = append(truth, mos.TrueQoE(r))
	}
	rWeighted := stats.Pearson(pWeighted, truth)
	rBlind := stats.Pearson(pBlind, truth)
	if rWeighted < 0.85 {
		t.Fatalf("profiled-weight model PLCC %.2f too low", rWeighted)
	}
	if rWeighted <= rBlind {
		t.Fatalf("profiled weights (%.3f) no better than uniform weights (%.3f)", rWeighted, rBlind)
	}
}

func uniform(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// TestPipelineDeterminism re-runs profiling and streaming end to end and
// demands bit-identical outputs — the property the experiment harness
// depends on.
func TestPipelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is slow")
	}
	run := func() ([]float64, []int) {
		full, err := video.ByName("Girl")
		if err != nil {
			t.Fatal(err)
		}
		v, err := full.Excerpt(0, 12)
		if err != nil {
			t.Fatal(err)
		}
		pop, err := mos.NewPopulation(mos.PopulationConfig{Size: 8000, Seed: 0x1409})
		if err != nil {
			t.Fatal(err)
		}
		p, err := crowd.NewProfiler(pop).Profile(v)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.Generate(trace.GenSpec{Name: "d", Kind: trace.KindHSDPA, MeanBps: 1.1e6, Seconds: 600, Seed: 3})
		res, err := player.Play(v, tr, abr.NewSenseiFugu(), p.Weights, player.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return p.Weights, res.Rendering.Rungs
	}
	w1, r1 := run()
	w2, r2 := run()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weight %d diverged: %v vs %v", i, w1[i], w2[i])
		}
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("rung %d diverged", i)
		}
	}
}

// TestWeightLibraryFeedsManifest exercises the deployment path: profile →
// persist library → build manifest → client-side parse → ABR consumption.
func TestWeightLibraryFeedsManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is slow")
	}
	full, err := video.ByName("Space")
	if err != nil {
		t.Fatal(err)
	}
	v, err := full.Excerpt(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := mos.NewPopulation(mos.PopulationConfig{Size: 8000, Seed: 0x140a})
	if err != nil {
		t.Fatal(err)
	}
	p, err := crowd.NewProfiler(pop).Profile(v)
	if err != nil {
		t.Fatal(err)
	}

	// Persist and reload the library, as a video-management system would.
	lib := &crowd.WeightLibrary{Weights: map[string][]float64{v.Name: p.Weights}}
	var buf bytes.Buffer
	if err := lib.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := crowd.ReadWeightLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Manifest round trip.
	mpd, err := sensei.BuildMPD(v, loaded.Weights[v.Name])
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := mpd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	_ = encoded

	weights, err := mpd.Weights()
	if err != nil {
		t.Fatal(err)
	}

	// The parsed weights must drive the ABR identically to the originals.
	tr := trace.Generate(trace.GenSpec{Name: "m", Kind: trace.KindFCC, MeanBps: 1.5e6, Seconds: 600, Seed: 9})
	a, err := player.Play(v, tr, abr.NewSenseiFugu(), p.Weights, player.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := player.Play(v, tr, abr.NewSenseiFugu(), weights, player.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rendering.Rungs {
		if a.Rendering.Rungs[i] != b.Rendering.Rungs[i] {
			t.Fatalf("manifest-carried weights changed decisions at chunk %d", i)
		}
	}
}

// TestAllAlgorithmsProduceValidSessions fuzzes every ABR over varied
// traces and checks session invariants.
func TestAllAlgorithmsProduceValidSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is slow")
	}
	full, err := video.ByName("Discus")
	if err != nil {
		t.Fatal(err)
	}
	v, err := full.Excerpt(0, 12)
	if err != nil {
		t.Fatal(err)
	}
	w := v.TrueSensitivity()
	algos := []struct {
		alg player.Algorithm
		w   []float64
	}{
		{abr.NewBBA(), nil},
		{abr.NewBOLA(), nil},
		{abr.NewFugu(), nil},
		{abr.NewSenseiFugu(), w},
		{abr.NewPensieve(3), nil},
		{abr.NewSenseiPensieve(3), w},
	}
	rng := stats.NewRNG(0x140b)
	for trial := 0; trial < 6; trial++ {
		kind := trace.KindFCC
		if rng.Bool(0.5) {
			kind = trace.KindHSDPA
		}
		tr := trace.Generate(trace.GenSpec{
			Name: "fuzz", Kind: kind, MeanBps: rng.Range(0.4e6, 6e6), Seconds: 400, Seed: rng.Uint64(),
		})
		for _, a := range algos {
			res, err := player.Play(v, tr, a.alg, a.w, player.Config{})
			if err != nil {
				t.Fatalf("%s on %s: %v", a.alg.Name(), tr.Name, err)
			}
			if err := res.Rendering.Validate(); err != nil {
				t.Fatalf("%s produced invalid rendering: %v", a.alg.Name(), err)
			}
			if q := mos.TrueQoE(res.Rendering); q < 0 || q > 1 {
				t.Fatalf("%s QoE %v out of range", a.alg.Name(), q)
			}
			if res.RebufferSec < 0 || res.BitsDownloaded <= 0 {
				t.Fatalf("%s produced nonsense session %+v", a.alg.Name(), res)
			}
		}
	}
}
